//! The runtime driver: spawns workers, dispatches connections through the
//! kernel-side program, aggregates results.

use crate::clock::Clock;
use crate::report::{ComponentOverhead, RuntimeReport};
use crate::worker::{run_worker, Task, WorkerCtx, WorkerOutput};
use crossbeam::channel::{unbounded, Sender};
use hermes_core::dispatch::ConnDispatcher;
use hermes_core::group::GroupedConnDispatcher;
use hermes_core::sched::SchedConfig;
use hermes_core::sdk::WorkerSession;
use hermes_core::selmap::SelMap;
use hermes_core::wst::Wst;
use hermes_ebpf::{ExecTier, GroupedReuseportGroup, ReuseportGroup};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Runtime configuration.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Worker threads.
    pub workers: usize,
    /// `epoll_wait` timeout (paper: 5 ms).
    pub epoll_timeout: Duration,
    /// Max events per loop iteration.
    pub max_events: usize,
    /// Scheduler tuning.
    pub sched: SchedConfig,
    /// Dispatch through the verified eBPF bytecode (true) or the native
    /// oracle (false). Decisions are identical; bytecode costs more per
    /// dispatch, which is exactly what Table 5's dispatcher column wants
    /// to see.
    pub use_ebpf: bool,
    /// Shard workers into this many two-level dispatch groups (§7). `None`
    /// keeps the flat single-bitmap path. With `Some(g)`, `workers` must
    /// divide evenly into `g` groups of at most 64, each with its own WST,
    /// selection map, and per-worker scheduler; dispatch picks the group by
    /// flow hash (level 1) then rank-selects within it (level 2).
    pub groups: Option<usize>,
}

impl RuntimeConfig {
    /// Defaults for `workers` workers.
    pub fn new(workers: usize) -> Self {
        Self {
            workers,
            epoll_timeout: Duration::from_millis(5),
            max_events: hermes_core::DISPATCH_BATCH,
            sched: SchedConfig::default(),
            use_ebpf: true,
            groups: None,
        }
    }

    /// Defaults for `workers` workers sharded into `groups` groups.
    pub fn grouped(workers: usize, groups: usize) -> Self {
        Self {
            groups: Some(groups),
            ..Self::new(workers)
        }
    }
}

/// One connection's script: where it hashes, what it costs.
#[derive(Clone, Debug)]
pub struct ConnectionScript {
    /// Precomputed 4-tuple hash (kernel context for the dispatch program).
    pub flow_hash: u32,
    /// Per-request CPU costs, submitted in order.
    pub requests: Vec<Duration>,
    /// Health-probe flag (latency lands in the probe histogram).
    pub probe: bool,
}

/// Shared kernel-side dispatch state.
enum Kernel {
    Ebpf(ReuseportGroup),
    Native {
        sel: Arc<SelMap>,
        dispatcher: ConnDispatcher,
    },
    /// §7 two-level dispatch through the compiled grouped bytecode.
    GroupedEbpf(GroupedReuseportGroup),
    /// §7 two-level dispatch through the native grouped oracle.
    GroupedNative(GroupedConnDispatcher),
}

/// SDK sync target routing bitmap publishes to whichever kernel backs
/// this runtime (flat kernels).
struct KernelSync(Arc<Kernel>);

impl hermes_core::sdk::SyncTarget for KernelSync {
    fn sync(&self, bitmap: hermes_core::WorkerBitmap) {
        match &*self.0 {
            Kernel::Ebpf(g) => g.sync_bitmap(bitmap),
            Kernel::Native { sel, .. } => {
                sel.store_if_changed(bitmap);
            }
            _ => unreachable!("flat sync target on a grouped kernel"),
        }
    }
}

/// SDK sync target publishing one group's bitmap to a grouped kernel.
struct GroupKernelSync {
    kernel: Arc<Kernel>,
    group: usize,
}

impl hermes_core::sdk::SyncTarget for GroupKernelSync {
    fn sync(&self, bitmap: hermes_core::WorkerBitmap) {
        match &*self.kernel {
            Kernel::GroupedEbpf(g) => g.sync_group_bitmap(self.group, bitmap),
            Kernel::GroupedNative(d) => {
                d.sel(self.group).store_if_changed(bitmap);
            }
            _ => unreachable!("grouped sync target on a flat kernel"),
        }
    }
}

/// A running LB instance.
pub struct LbRuntime {
    kernel: Arc<Kernel>,
    senders: Vec<Sender<Task>>,
    handles: Vec<JoinHandle<WorkerOutput>>,
    clock: Clock,
    started: Instant,
    workers: usize,
    /// Flattening stride for grouped kernels (`workers` when flat).
    group_size: usize,
    dispatcher_ns: Arc<AtomicU64>,
    directed: u64,
    fallback: u64,
}

/// One dispatch decision, normalized across kernels: whether the bitmap
/// directed it, which group it landed in (grouped kernels), and the global
/// worker id.
#[derive(Clone, Copy)]
struct Decision {
    directed: bool,
    group: Option<usize>,
    worker: usize,
}

impl LbRuntime {
    /// Spawn workers and return a handle for submitting traffic.
    pub fn start(config: RuntimeConfig) -> Self {
        match config.groups {
            None => Self::start_flat(config),
            Some(groups) => Self::start_grouped(config, groups),
        }
    }

    fn start_flat(config: RuntimeConfig) -> Self {
        assert!(
            (1..=64).contains(&config.workers),
            "1..=64 workers per runtime"
        );
        let wst = Arc::new(Wst::new(config.workers));
        let clock = Clock::new();
        let kernel = Arc::new(if config.use_ebpf {
            let group = ReuseportGroup::new(config.workers);
            // The attached Algorithm 2 program must be statically proven
            // safe (zero analysis warnings) and *proven* onto the platform
            // execution ceiling — the translation validator must have
            // certified the compiled artifact (and the jit, where present,
            // lowered it) — before the runtime serves on it.
            assert_eq!(
                group.tier(),
                ExecTier::native_ceiling(),
                "dispatch program failed verification:\n{}",
                group.analysis().render(group.program())
            );
            assert!(
                group.validation().blocks_proven() > 0,
                "compiled dispatch admitted without a translation proof"
            );
            Kernel::Ebpf(group)
        } else {
            Kernel::Native {
                sel: Arc::new(SelMap::new()),
                dispatcher: ConnDispatcher::new(config.workers),
            }
        });
        let mut senders = Vec::with_capacity(config.workers);
        let mut handles = Vec::with_capacity(config.workers);
        for id in 0..config.workers {
            let (tx, rx) = unbounded();
            senders.push(tx);
            let session = WorkerSession::new(
                Arc::clone(&wst),
                id,
                config.sched.clone(),
                Arc::new(KernelSync(Arc::clone(&kernel))),
            );
            let epoll_timeout = config.epoll_timeout;
            let max_events = config.max_events;
            handles.push(std::thread::spawn(move || {
                run_worker(WorkerCtx {
                    rx,
                    session,
                    clock,
                    epoll_timeout,
                    max_events,
                })
            }));
        }
        Self {
            kernel,
            senders,
            handles,
            clock,
            started: Instant::now(),
            workers: config.workers,
            group_size: config.workers,
            dispatcher_ns: Arc::new(AtomicU64::new(0)),
            directed: 0,
            fallback: 0,
        }
    }

    /// §7 sharded runtime: `groups` groups of `workers / groups` workers,
    /// each with its own WST and selection map. Every worker runs its own
    /// scheduler instance over *its group's* table only, so scheduling cost
    /// stays O(group) as the deployment scales past 64 workers.
    fn start_grouped(config: RuntimeConfig, groups: usize) -> Self {
        assert!(groups >= 1, "need at least one group");
        assert_eq!(
            config.workers % groups,
            0,
            "workers must divide evenly into groups"
        );
        let group_size = config.workers / groups;
        assert!(
            (1..=64).contains(&group_size),
            "1..=64 workers per group (got {group_size})"
        );
        let clock = Clock::new();
        let kernel = Arc::new(if config.use_ebpf {
            let group = GroupedReuseportGroup::new(groups, group_size);
            // The grouped program must be *proven* onto the platform
            // execution ceiling (validator certificate) with every helper
            // pre-resolved: no registry lock on the per-SYN path.
            assert_eq!(
                group.tier(),
                ExecTier::native_ceiling(),
                "grouped dispatch program failed verification:\n{}",
                group.analysis().render(group.program())
            );
            assert!(
                group.validation().blocks_proven() > 0,
                "grouped compiled dispatch admitted without a translation proof"
            );
            assert_eq!(
                group
                    .vm()
                    .compiled()
                    .expect("compiled tier present")
                    .dyn_helper_calls(),
                0,
                "grouped dispatch must be lock-free (pre-resolved map banks)"
            );
            Kernel::GroupedEbpf(group)
        } else {
            let sel_maps: Vec<Arc<SelMap>> = (0..groups).map(|_| Arc::new(SelMap::new())).collect();
            Kernel::GroupedNative(GroupedConnDispatcher::new(
                sel_maps,
                &vec![group_size; groups],
                group_size,
            ))
        });
        let mut senders = Vec::with_capacity(config.workers);
        let mut handles = Vec::with_capacity(config.workers);
        for g in 0..groups {
            let wst = Arc::new(Wst::new(group_size));
            for local in 0..group_size {
                let (tx, rx) = unbounded();
                senders.push(tx);
                let session = WorkerSession::new(
                    Arc::clone(&wst),
                    local,
                    config.sched.clone(),
                    Arc::new(GroupKernelSync {
                        kernel: Arc::clone(&kernel),
                        group: g,
                    }),
                )
                .with_trace_lane(hermes_trace::grouped_lane(g, group_size, local));
                let epoll_timeout = config.epoll_timeout;
                let max_events = config.max_events;
                handles.push(std::thread::spawn(move || {
                    run_worker(WorkerCtx {
                        rx,
                        session,
                        clock,
                        epoll_timeout,
                        max_events,
                    })
                }));
            }
        }
        Self {
            kernel,
            senders,
            handles,
            clock,
            started: Instant::now(),
            workers: config.workers,
            group_size,
            dispatcher_ns: Arc::new(AtomicU64::new(0)),
            directed: 0,
            fallback: 0,
        }
    }

    /// Kernel-side dispatch of one connection (tallied).
    fn dispatch(&mut self, flow_hash: u32) -> Decision {
        let t = Instant::now();
        let decision = match &*self.kernel {
            Kernel::Ebpf(g) => {
                let out = g.dispatch(flow_hash);
                Decision {
                    directed: out.is_directed(),
                    group: None,
                    worker: out.worker(),
                }
            }
            Kernel::Native { sel, dispatcher } => {
                let out = dispatcher.dispatch(sel.load(), flow_hash);
                Decision {
                    directed: out.is_directed(),
                    group: None,
                    worker: out.worker(),
                }
            }
            Kernel::GroupedEbpf(g) => {
                let out = g.dispatch(flow_hash);
                Decision {
                    directed: out.directed,
                    group: Some(out.group),
                    worker: out.global(self.group_size),
                }
            }
            Kernel::GroupedNative(d) => {
                let out = d.dispatch(flow_hash);
                Decision {
                    directed: out.is_directed(),
                    group: Some(out.group),
                    worker: out.global,
                }
            }
        };
        self.dispatcher_ns
            .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.tally(decision);
        decision
    }

    /// Record a dispatch decision in the directed/fallback tallies.
    fn tally(&mut self, d: Decision) {
        if d.directed {
            self.directed += 1;
        } else {
            self.fallback += 1;
        }
    }

    /// Deliver a dispatched connection's accept + requests + close to its
    /// worker.
    fn deliver(&self, w: usize, script: &ConnectionScript) {
        let tx = &self.senders[w];
        tx.send(Task::Accept).expect("worker alive");
        for service in &script.requests {
            tx.send(Task::Request {
                service_ns: service.as_nanos() as u64,
                submitted_ns: self.clock.now_ns(),
                probe: script.probe,
            })
            .expect("worker alive");
        }
        tx.send(Task::Close).expect("worker alive");
    }

    /// Flight-recorder hook for one dispatch decision: flat kernels emit
    /// `Dispatch`, grouped kernels emit `GroupDispatch` with the group in
    /// the payload's high word so traces break out per group.
    fn dispatch_trace(&self, flow_hash: u32, d: Decision) {
        match d.group {
            None => hermes_trace::trace_event!(
                self.clock.now_ns(),
                hermes_trace::EventKind::Dispatch,
                hermes_trace::KERNEL_LANE,
                flow_hash,
                d.worker
            ),
            Some(g) => hermes_trace::trace_event!(
                self.clock.now_ns(),
                hermes_trace::EventKind::GroupDispatch,
                hermes_trace::KERNEL_LANE,
                flow_hash,
                ((g as u64) << 32) | d.worker as u64
            ),
        }
    }

    /// Submit one connection: dispatch, deliver accept + requests + close.
    /// Returns the worker the kernel selected.
    pub fn submit(&mut self, script: ConnectionScript) -> usize {
        let d = self.dispatch(script.flow_hash);
        self.dispatch_trace(script.flow_hash, d);
        self.deliver(d.worker, &script);
        d.worker
    }

    /// Submit an arrival burst through one batched kernel dispatch: the
    /// availability bitmap is loaded (and, on the eBPF path, the map
    /// registry resolved) once for the whole batch instead of once per
    /// connection. Decisions are identical to per-connection
    /// [`submit`](Self::submit) calls against the same bitmap — userspace
    /// publishes asynchronously either way — and each script's tasks are
    /// delivered in submission order. Returns the chosen worker per script.
    pub fn submit_batch(&mut self, scripts: &[ConnectionScript]) -> Vec<usize> {
        let hashes: Vec<u32> = scripts.iter().map(|s| s.flow_hash).collect();
        let mut decisions: Vec<Decision> = Vec::with_capacity(scripts.len());
        let t = Instant::now();
        match &*self.kernel {
            Kernel::Ebpf(g) => {
                let mut outcomes = Vec::with_capacity(hashes.len());
                g.dispatch_batch(&hashes, &mut outcomes);
                decisions.extend(outcomes.into_iter().map(|o| Decision {
                    directed: o.is_directed(),
                    group: None,
                    worker: o.worker(),
                }));
            }
            Kernel::Native { sel, dispatcher } => {
                let mut outcomes = Vec::with_capacity(hashes.len());
                dispatcher.dispatch_batch(sel.load(), &hashes, &mut outcomes);
                decisions.extend(outcomes.into_iter().map(|o| Decision {
                    directed: o.is_directed(),
                    group: None,
                    worker: o.worker(),
                }));
            }
            Kernel::GroupedEbpf(g) => {
                let mut outcomes = Vec::with_capacity(hashes.len());
                g.dispatch_batch(&hashes, &mut outcomes);
                decisions.extend(outcomes.into_iter().map(|o| Decision {
                    directed: o.directed,
                    group: Some(o.group),
                    worker: o.global(self.group_size),
                }));
            }
            Kernel::GroupedNative(d) => {
                let mut outcomes = Vec::with_capacity(hashes.len());
                d.dispatch_batch(&hashes, &mut outcomes);
                decisions.extend(outcomes.into_iter().map(|o| Decision {
                    directed: o.is_directed(),
                    group: Some(o.group),
                    worker: o.global,
                }));
            }
        }
        self.dispatcher_ns
            .fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
        hermes_trace::trace_event!(
            self.clock.now_ns(),
            hermes_trace::EventKind::DispatchBatch,
            hermes_trace::KERNEL_LANE,
            hashes.len(),
            decisions.iter().filter(|d| d.directed).count()
        );
        let mut workers = Vec::with_capacity(scripts.len());
        for ((script, &hash), d) in scripts.iter().zip(&hashes).zip(decisions) {
            self.tally(d);
            // Grouped batches emit one GroupDispatch per decision so the
            // trace summary can break dispatch out by group; flat batches
            // keep their single DispatchBatch record, as before.
            if d.group.is_some() {
                self.dispatch_trace(hash, d);
            }
            self.deliver(d.worker, script);
            workers.push(d.worker);
        }
        workers
    }

    /// The shared clock (for pacing submissions).
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// Stop all workers, join, and aggregate the report.
    pub fn shutdown(self) -> RuntimeReport {
        for tx in &self.senders {
            let _ = tx.send(Task::Shutdown);
        }
        drop(self.senders);
        let mut report = RuntimeReport {
            wall_ns: self.started.elapsed().as_nanos() as u64,
            workers: self.workers,
            completed_requests: 0,
            accepted_per_worker: vec![0; self.workers],
            request_latency: hermes_metrics::Histogram::latency(),
            probe_latency: hermes_metrics::Histogram::latency(),
            overhead: ComponentOverhead {
                dispatcher_ns: self.dispatcher_ns.load(Ordering::Relaxed),
                ..ComponentOverhead::default()
            },
            sched_calls: 0,
            directed_dispatches: self.directed,
            fallback_dispatches: self.fallback,
            pacer_missed_deadlines: 0,
            pacer_max_overshoot_ns: 0,
        };
        // Handles were spawned in global-worker order; a grouped worker's
        // session id is group-local, so index by spawn order rather than
        // the session's own id.
        for (global, h) in self.handles.into_iter().enumerate() {
            let out = h.join().expect("worker panicked");
            report.completed_requests += out.completed;
            report.accepted_per_worker[global] = out.accepted;
            report.request_latency.merge(&out.request_latency);
            report.probe_latency.merge(&out.probe_latency);
            report.overhead.counter_ns += out.overhead.counter_ns;
            report.overhead.scheduler_ns += out.overhead.scheduler_ns;
            report.overhead.sync_ns += out.overhead.sync_ns;
            report.sched_calls += out.sched_calls;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pacer::Pacer;

    fn scripts(n: u32, service: Duration) -> impl Iterator<Item = ConnectionScript> {
        (0..n).map(move |i| ConnectionScript {
            flow_hash: i.wrapping_mul(0x9E37_79B9).rotate_left(11) ^ 0xA5A5_5A5A,
            requests: vec![service],
            probe: false,
        })
    }

    #[test]
    fn all_submitted_requests_complete() {
        let mut rt = LbRuntime::start(RuntimeConfig::new(4));
        for s in scripts(200, Duration::from_micros(20)) {
            rt.submit(s);
        }
        let report = rt.shutdown();
        assert_eq!(report.completed_requests, 200);
        assert_eq!(report.accepted_per_worker.iter().sum::<u64>(), 200);
        assert!(report.request_latency.count() == 200);
        assert!(report.sched_calls > 0);
    }

    #[test]
    fn healthy_workers_share_accepts() {
        let mut rt = LbRuntime::start(RuntimeConfig::new(4));
        // Give workers a moment to publish their first status.
        std::thread::sleep(Duration::from_millis(15));
        // Pace submissions: an unpaced burst outruns the feedback loop,
        // shrinks the bitmap, and (by design, §5.3.2) falls back to
        // hashing — realistic CPS keeps the loop closed.
        let mut pacer = Pacer::new(Duration::from_micros(30));
        for s in scripts(800, Duration::from_micros(5)) {
            rt.submit(s);
            pacer.pace();
        }
        let mut report = rt.shutdown();
        report.note_pacer(&pacer);
        assert_eq!(report.pacer_missed_deadlines, pacer.missed_deadlines());
        assert_eq!(report.pacer_max_overshoot_ns, pacer.max_overshoot_ns());
        assert_eq!(report.completed_requests, 800);
        assert!(
            report.directed_dispatches > 600,
            "directed {} fallback {}",
            report.directed_dispatches,
            report.fallback_dispatches
        );
        let max = *report.accepted_per_worker.iter().max().unwrap();
        let min = *report.accepted_per_worker.iter().min().unwrap();
        assert!(min > 0, "a healthy worker was starved");
        assert!(max < 400, "one worker took the majority: {min}..{max}");
    }

    #[test]
    fn busy_worker_is_routed_around() {
        let mut cfg = RuntimeConfig::new(4);
        cfg.sched.hang_threshold_ns = 3_000_000; // 3 ms
        let mut rt = LbRuntime::start(cfg);
        std::thread::sleep(Duration::from_millis(15));
        // Poison one worker with a 150 ms request.
        let victim = rt.submit(ConnectionScript {
            flow_hash: 0x1234_5678,
            requests: vec![Duration::from_millis(150)],
            probe: false,
        });
        // Let the hang threshold trip while the victim spins.
        std::thread::sleep(Duration::from_millis(20));
        let mut pacer = Pacer::new(Duration::from_micros(30));
        for s in scripts(300, Duration::from_micros(5)) {
            rt.submit(s);
            pacer.pace();
        }
        let report = rt.shutdown();
        assert_eq!(report.completed_requests, 301);
        let victim_accepts = report.accepted_per_worker[victim];
        // The hung victim must be clearly disfavored vs the healthy mean.
        // It cannot be required to get *zero*: fallback dispatches (when
        // CPU contention from parallel tests momentarily shrinks the
        // bitmap below the n>1 guard) still hash uniformly — the same
        // residual the paper accepts from two-stage filtering (§5.3.2).
        let healthy_mean = (301 - victim_accepts) as f64 / 3.0;
        assert!(
            (victim_accepts as f64) < 0.62 * healthy_mean,
            "victim {victim} accepted {victim_accepts}, healthy mean {healthy_mean:.0}"
        );
    }

    #[test]
    fn probes_are_tracked_separately() {
        let mut rt = LbRuntime::start(RuntimeConfig::new(2));
        rt.submit(ConnectionScript {
            flow_hash: 7,
            requests: vec![Duration::from_micros(10)],
            probe: true,
        });
        for s in scripts(50, Duration::from_micros(10)) {
            rt.submit(s);
        }
        let report = rt.shutdown();
        assert_eq!(report.probe_latency.count(), 1);
        assert_eq!(report.request_latency.count(), 50);
    }

    #[test]
    fn overhead_accounting_is_populated() {
        let mut rt = LbRuntime::start(RuntimeConfig::new(2));
        for s in scripts(500, Duration::from_micros(10)) {
            rt.submit(s);
        }
        let report = rt.shutdown();
        let o = &report.overhead;
        assert!(o.counter_ns > 0);
        assert!(o.scheduler_ns > 0);
        assert!(o.sync_ns > 0);
        assert!(o.dispatcher_ns > 0);
        // Sanity bound only: this micro-run is all overhead and little
        // work, so the share is far above Table 5's production numbers;
        // the table5 harness measures under realistic request costs. With
        // the flight recorder compiled in, its (unoptimized, debug-build)
        // emit cost lands inside the timed sections too, so allow more.
        let limit = if hermes_trace::ENABLED { 99.0 } else { 95.0 };
        let pct = o.as_cpu_percent(report.workers, report.wall_ns);
        let total: f64 = pct.iter().sum();
        assert!(total < limit, "overhead {total}%");
    }

    #[test]
    fn batched_submission_completes_on_both_kernels() {
        for use_ebpf in [false, true] {
            let mut cfg = RuntimeConfig::new(4);
            cfg.use_ebpf = use_ebpf;
            let mut rt = LbRuntime::start(cfg);
            std::thread::sleep(Duration::from_millis(15));
            let burst: Vec<ConnectionScript> = scripts(64, Duration::from_micros(10)).collect();
            let workers = rt.submit_batch(&burst);
            assert_eq!(workers.len(), 64, "use_ebpf={use_ebpf}");
            assert!(workers.iter().all(|&w| w < 4), "use_ebpf={use_ebpf}");
            let report = rt.shutdown();
            assert_eq!(report.completed_requests, 64, "use_ebpf={use_ebpf}");
            assert_eq!(
                report.directed_dispatches + report.fallback_dispatches,
                64,
                "use_ebpf={use_ebpf}"
            );
            assert!(report.overhead.dispatcher_ns > 0, "use_ebpf={use_ebpf}");
        }
    }

    #[test]
    fn batched_submission_matches_per_connection_decisions() {
        // With a stable bitmap a batch must pick exactly the workers
        // per-connection dispatch picks: decisions depend only on
        // (bitmap, flow_hash). Zero-work scripts (accept + close, no
        // requests) keep every worker healthy so the bitmap stays full in
        // both runtimes for the whole comparison.
        let burst: Vec<ConnectionScript> = (0..64u32)
            .map(|i| ConnectionScript {
                flow_hash: i.wrapping_mul(0x9E37_79B9).rotate_left(11) ^ 0xA5A5_5A5A,
                requests: Vec::new(),
                probe: false,
            })
            .collect();
        let mut batched = LbRuntime::start(RuntimeConfig::new(4));
        let mut single = LbRuntime::start(RuntimeConfig::new(4));
        // Let every worker publish healthy status so the bitmap is full
        // and stable in both runtimes.
        std::thread::sleep(Duration::from_millis(30));
        let batch_workers = batched.submit_batch(&burst);
        let single_workers: Vec<usize> = burst.iter().map(|s| single.submit(s.clone())).collect();
        assert_eq!(batch_workers, single_workers);
        batched.shutdown();
        single.shutdown();
    }

    #[test]
    fn grouped_runtime_completes_on_both_kernels() {
        for use_ebpf in [false, true] {
            let mut cfg = RuntimeConfig::grouped(4, 2);
            cfg.use_ebpf = use_ebpf;
            let mut rt = LbRuntime::start(cfg);
            std::thread::sleep(Duration::from_millis(15));
            let burst: Vec<ConnectionScript> = scripts(64, Duration::from_micros(10)).collect();
            let workers = rt.submit_batch(&burst);
            assert!(workers.iter().all(|&w| w < 4), "use_ebpf={use_ebpf}");
            for s in scripts(32, Duration::from_micros(10)) {
                let w = rt.submit(s);
                assert!(w < 4, "use_ebpf={use_ebpf}");
            }
            let report = rt.shutdown();
            assert_eq!(report.completed_requests, 96, "use_ebpf={use_ebpf}");
            assert_eq!(report.accepted_per_worker.iter().sum::<u64>(), 96);
            assert_eq!(
                report.directed_dispatches + report.fallback_dispatches,
                96,
                "use_ebpf={use_ebpf}"
            );
        }
    }

    #[test]
    fn grouped_batch_matches_per_connection_decisions() {
        // Zero-work scripts keep every bitmap stable, so a grouped batch
        // must pick exactly what per-connection grouped dispatch picks —
        // and the eBPF and native grouped kernels must agree with each
        // other (same two-level decision procedure).
        let burst: Vec<ConnectionScript> = (0..64u32)
            .map(|i| ConnectionScript {
                flow_hash: i.wrapping_mul(0x9E37_79B9).rotate_left(11) ^ 0xA5A5_5A5A,
                requests: Vec::new(),
                probe: false,
            })
            .collect();
        let mut batched = LbRuntime::start(RuntimeConfig::grouped(4, 2));
        let mut single = LbRuntime::start(RuntimeConfig::grouped(4, 2));
        let mut native = {
            let mut cfg = RuntimeConfig::grouped(4, 2);
            cfg.use_ebpf = false;
            LbRuntime::start(cfg)
        };
        std::thread::sleep(Duration::from_millis(30));
        let batch_workers = batched.submit_batch(&burst);
        let single_workers: Vec<usize> = burst.iter().map(|s| single.submit(s.clone())).collect();
        let native_workers = native.submit_batch(&burst);
        assert_eq!(batch_workers, single_workers);
        assert_eq!(batch_workers, native_workers);
        batched.shutdown();
        single.shutdown();
        native.shutdown();
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn grouped_runtime_rejects_ragged_groups() {
        LbRuntime::start(RuntimeConfig::grouped(7, 2));
    }

    #[test]
    fn native_and_ebpf_kernels_both_work() {
        for use_ebpf in [false, true] {
            let mut cfg = RuntimeConfig::new(3);
            cfg.use_ebpf = use_ebpf;
            let mut rt = LbRuntime::start(cfg);
            for s in scripts(60, Duration::from_micros(10)) {
                rt.submit(s);
            }
            let report = rt.shutdown();
            assert_eq!(report.completed_requests, 60, "use_ebpf={use_ebpf}");
        }
    }
}
