//! Run results and per-component overhead accounting (Table 5).

use hermes_metrics::Histogram;

/// Wall-clock time spent in each Hermes component, summed across workers.
///
/// Mirrors Table 5's columns: the userspace **counter** (WST atomic
/// updates), **scheduler** (Algorithm 1 passes), **system call** (bitmap
/// sync into the kernel map), and the kernel-side **dispatcher**
/// (Algorithm 2 per connection).
#[derive(Clone, Copy, Debug, Default)]
pub struct ComponentOverhead {
    /// Counter updates (enter_loop / busy / conn deltas), ns.
    pub counter_ns: u64,
    /// Scheduler (cascading filters), ns.
    pub scheduler_ns: u64,
    /// Map-sync "system call", ns.
    pub sync_ns: u64,
    /// Dispatcher (per-connection socket selection), ns.
    pub dispatcher_ns: u64,
}

impl ComponentOverhead {
    /// Express each component as a percentage of total worker CPU time
    /// (`workers * wall_ns`), the Table 5 metric.
    pub fn as_cpu_percent(&self, workers: usize, wall_ns: u64) -> [f64; 4] {
        let denom = (workers as f64) * (wall_ns as f64);
        if denom == 0.0 {
            return [0.0; 4];
        }
        [
            self.counter_ns as f64 / denom * 100.0,
            self.scheduler_ns as f64 / denom * 100.0,
            self.sync_ns as f64 / denom * 100.0,
            self.dispatcher_ns as f64 / denom * 100.0,
        ]
    }

    /// Sum of all components (ns).
    pub fn total_ns(&self) -> u64 {
        self.counter_ns + self.scheduler_ns + self.sync_ns + self.dispatcher_ns
    }
}

/// Result of one threaded-runtime run.
#[derive(Clone, Debug)]
pub struct RuntimeReport {
    /// Wall-clock duration of the run (ns).
    pub wall_ns: u64,
    /// Worker threads.
    pub workers: usize,
    /// Requests completed.
    pub completed_requests: u64,
    /// Connections accepted per worker.
    pub accepted_per_worker: Vec<u64>,
    /// End-to-end request latency (submission → processed).
    pub request_latency: Histogram,
    /// Probe latency (scripts marked `probe`).
    pub probe_latency: Histogram,
    /// Hermes component overheads.
    pub overhead: ComponentOverhead,
    /// `schedule_and_sync` invocations across workers.
    pub sched_calls: u64,
    /// Dispatches that took the directed (bitmap) path.
    pub directed_dispatches: u64,
    /// Dispatches that fell back to hashing.
    pub fallback_dispatches: u64,
    /// Pacer deadlines already overdue at `pace()` entry, summed over every
    /// pacer folded in via [`RuntimeReport::note_pacer`].
    pub pacer_missed_deadlines: u64,
    /// Worst single pacer overshoot (ns) across noted pacers.
    pub pacer_max_overshoot_ns: u64,
}

impl RuntimeReport {
    /// Fold a traffic generator's pacing quality into the report: the open
    /// loop is only open if the generator held its schedule, so missed
    /// deadlines are part of a run's result, not just its configuration.
    pub fn note_pacer(&mut self, pacer: &crate::pacer::Pacer) {
        self.pacer_missed_deadlines += pacer.missed_deadlines();
        self.pacer_max_overshoot_ns = self.pacer_max_overshoot_ns.max(pacer.max_overshoot_ns());
    }

    /// Cross-worker standard deviation of accepted connections.
    pub fn accept_sd(&self) -> f64 {
        let v: Vec<f64> = self.accepted_per_worker.iter().map(|&a| a as f64).collect();
        hermes_metrics::welford::stddev_of(&v)
    }

    /// Scheduler call rate (per second).
    pub fn sched_rate(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.sched_calls as f64 * 1e9 / self.wall_ns as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_percent_normalizes_by_worker_seconds() {
        let o = ComponentOverhead {
            counter_ns: 2_000_000,
            scheduler_ns: 1_000_000,
            sync_ns: 500_000,
            dispatcher_ns: 250_000,
        };
        // 4 workers over 100 ms wall: denom = 400 ms of CPU.
        let pct = o.as_cpu_percent(4, 100_000_000);
        assert!((pct[0] - 0.5).abs() < 1e-9);
        assert!((pct[1] - 0.25).abs() < 1e-9);
        assert!((pct[2] - 0.125).abs() < 1e-9);
        assert!((pct[3] - 0.0625).abs() < 1e-9);
        assert_eq!(o.total_ns(), 3_750_000);
    }

    #[test]
    fn zero_wall_is_safe() {
        assert_eq!(ComponentOverhead::default().as_cpu_percent(4, 0), [0.0; 4]);
    }
}
