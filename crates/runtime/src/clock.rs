//! Monotonic nanosecond clock shared by all runtime threads.
//!
//! The WST stores loop-entry timestamps as `u64` nanoseconds; every thread
//! must read the *same* clock for hang detection to mean anything. This is
//! the userspace analogue of the kernel's `ktime_get_ns`.

use std::time::Instant;

/// A process-wide monotonic epoch.
#[derive(Clone, Copy, Debug)]
pub struct Clock {
    epoch: Instant,
}

impl Clock {
    /// Start a clock at "now".
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }

    /// Nanoseconds since the epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

impl Default for Clock {
    fn default() -> Self {
        Self::new()
    }
}

/// Busy-spin for `ns` nanoseconds — models request CPU cost with *real*
/// CPU consumption (a sleep would let the OS schedule other workers and
/// understate contention).
pub fn spin_for_ns(ns: u64) {
    let start = Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let c = Clock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn clones_share_the_epoch() {
        let c = Clock::new();
        let d = c;
        let a = c.now_ns();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let b = d.now_ns();
        assert!(b > a);
        assert!(b - a >= 900_000, "clone drifted: {}", b - a);
    }

    #[test]
    fn spin_consumes_at_least_requested_time() {
        let c = Clock::new();
        let before = c.now_ns();
        spin_for_ns(200_000);
        assert!(c.now_ns() - before >= 200_000);
    }
}
