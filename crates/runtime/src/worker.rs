//! The worker thread: Fig. 9's modified epoll event loop, for real.
//!
//! Each worker owns a task channel (its "socket + epoll instance"): a
//! blocking `recv_timeout(5 ms)` is the `epoll_wait` call, the drained
//! backlog is the returned event list, and request CPU cost is consumed by
//! spinning. Around that original loop sit exactly the Hermes additions of
//! Fig. 9, made through the embeddable SDK (`hermes_core::sdk`):
//! `loop_top` on entry, `events_fetched`/`event_handled` around the batch,
//! `conn_opened`/`conn_closed` at accept/close, and
//! `schedule_only`/`sync_only` at the loop end — each timed for the
//! Table 5 overhead breakdown.

use crate::clock::{spin_for_ns, Clock};
use crate::report::ComponentOverhead;
use crossbeam::channel::{Receiver, RecvTimeoutError};
use hermes_core::sdk::{SyncTarget, WorkerSession};
use hermes_metrics::Histogram;
use std::time::{Duration, Instant};

/// One unit of work delivered to a worker's "epoll instance".
#[derive(Clone, Debug)]
pub enum Task {
    /// A new connection to accept.
    Accept,
    /// A request event costing `service_ns` of CPU.
    Request {
        /// CPU to burn.
        service_ns: u64,
        /// Submission timestamp (clock ns) for latency accounting.
        submitted_ns: u64,
        /// Whether this is a health probe (Fig. 11 accounting).
        probe: bool,
    },
    /// Connection teardown.
    Close,
    /// Drain remaining tasks and exit.
    Shutdown,
}

/// Everything a worker thread needs.
pub struct WorkerCtx<T: SyncTarget> {
    /// Task channel (the accept queue + conn events).
    pub rx: Receiver<Task>,
    /// This worker's SDK session over the shared WST.
    pub session: WorkerSession<T>,
    /// Shared clock.
    pub clock: Clock,
    /// `epoll_wait` timeout.
    pub epoll_timeout: Duration,
    /// Max events per loop iteration.
    pub max_events: usize,
}

/// Per-worker results returned at join time.
#[derive(Debug)]
pub struct WorkerOutput {
    /// Worker index.
    pub id: usize,
    /// Connections accepted.
    pub accepted: u64,
    /// Requests completed.
    pub completed: u64,
    /// Request latency (non-probe).
    pub request_latency: Histogram,
    /// Probe latency.
    pub probe_latency: Histogram,
    /// Component overhead measured on this worker.
    pub overhead: ComponentOverhead,
    /// schedule_and_sync invocations.
    pub sched_calls: u64,
}

/// Run the event loop until shutdown; returns the worker's measurements.
pub fn run_worker<T: SyncTarget>(mut ctx: WorkerCtx<T>) -> WorkerOutput {
    let mut out = WorkerOutput {
        id: ctx.session.id(),
        accepted: 0,
        completed: 0,
        request_latency: Histogram::latency(),
        probe_latency: Histogram::latency(),
        overhead: ComponentOverhead::default(),
        sched_calls: 0,
    };
    let mut batch: Vec<Task> = Vec::with_capacity(ctx.max_events);
    let mut shutting_down = false;

    loop {
        // ---- loop top: shm_avail_update(current_time) ----
        let t = Instant::now();
        ctx.session.loop_top(ctx.clock.now_ns());
        out.overhead.counter_ns += t.elapsed().as_nanos() as u64;

        // ---- epoll_wait(...) ----
        batch.clear();
        match ctx.rx.recv_timeout(ctx.epoll_timeout) {
            Ok(task) => batch.push(task),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => shutting_down = true,
        }
        while batch.len() < ctx.max_events {
            match ctx.rx.try_recv() {
                Ok(task) => batch.push(task),
                Err(_) => break,
            }
        }

        // ---- shm_busy_count(event_num) ----
        let t = Instant::now();
        ctx.session.events_fetched(batch.len());
        out.overhead.counter_ns += t.elapsed().as_nanos() as u64;

        // ---- handle events ----
        for task in batch.drain(..) {
            match task {
                Task::Accept => {
                    let t = Instant::now();
                    ctx.session.conn_opened();
                    ctx.session.event_handled();
                    out.overhead.counter_ns += t.elapsed().as_nanos() as u64;
                    out.accepted += 1;
                }
                Task::Request {
                    service_ns,
                    submitted_ns,
                    probe,
                } => {
                    spin_for_ns(service_ns);
                    let t = Instant::now();
                    ctx.session.event_handled();
                    out.overhead.counter_ns += t.elapsed().as_nanos() as u64;
                    let latency = ctx.clock.now_ns().saturating_sub(submitted_ns);
                    if probe {
                        out.probe_latency.record(latency);
                    } else {
                        out.request_latency.record(latency);
                    }
                    out.completed += 1;
                }
                Task::Close => {
                    let t = Instant::now();
                    ctx.session.conn_closed();
                    ctx.session.event_handled();
                    out.overhead.counter_ns += t.elapsed().as_nanos() as u64;
                }
                Task::Shutdown => shutting_down = true,
            }
        }

        // ---- schedule_and_sync() at loop end (§5.3.2), timed in halves
        // so Table 5 can separate Scheduler from System call. ----
        let t = Instant::now();
        let decision = ctx.session.schedule_only(ctx.clock.now_ns());
        out.overhead.scheduler_ns += t.elapsed().as_nanos() as u64;
        let t = Instant::now();
        ctx.session.sync_only(decision.bitmap);
        out.overhead.sync_ns += t.elapsed().as_nanos() as u64;
        out.sched_calls += 1;

        if shutting_down && ctx.rx.is_empty() {
            return out;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use hermes_core::sched::SchedConfig;
    use hermes_core::selmap::SelMap;
    use hermes_core::wst::Wst;
    use std::sync::Arc;

    fn spawn_one(
        rx: Receiver<Task>,
        wst: Arc<Wst>,
        sel: Arc<SelMap>,
        clock: Clock,
    ) -> std::thread::JoinHandle<WorkerOutput> {
        std::thread::spawn(move || {
            run_worker(WorkerCtx {
                rx,
                session: WorkerSession::new(wst, 0, SchedConfig::default(), sel),
                clock,
                epoll_timeout: Duration::from_millis(5),
                max_events: 64,
            })
        })
    }

    #[test]
    fn worker_processes_tasks_and_exits_on_shutdown() {
        let (tx, rx) = unbounded();
        let wst = Arc::new(Wst::new(1));
        let sel = Arc::new(SelMap::new());
        let clock = Clock::new();
        let h = spawn_one(rx, Arc::clone(&wst), Arc::clone(&sel), clock);
        tx.send(Task::Accept).unwrap();
        tx.send(Task::Request {
            service_ns: 10_000,
            submitted_ns: clock.now_ns(),
            probe: false,
        })
        .unwrap();
        tx.send(Task::Close).unwrap();
        tx.send(Task::Shutdown).unwrap();
        let out = h.join().unwrap();
        assert_eq!(out.accepted, 1);
        assert_eq!(out.completed, 1);
        assert!(out.request_latency.count() == 1);
        assert!(out.sched_calls >= 1);
        // Conn count returned to zero after Close.
        assert_eq!(wst.worker(0).snapshot().connections, 0);
        // The worker synced at least once.
        assert!(sel.update_count() >= 1);
    }

    #[test]
    fn idle_worker_schedules_every_timeout() {
        let (tx, rx) = unbounded();
        let wst = Arc::new(Wst::new(1));
        let sel = Arc::new(SelMap::new());
        let clock = Clock::new();
        let h = spawn_one(rx, wst, Arc::clone(&sel), clock);
        std::thread::sleep(Duration::from_millis(40));
        tx.send(Task::Shutdown).unwrap();
        let out = h.join().unwrap();
        // ~8 timeouts in 40 ms at a 5 ms epoll timeout; allow slack.
        assert!(out.sched_calls >= 4, "sched calls {}", out.sched_calls);
        assert_eq!(out.completed, 0);
    }

    #[test]
    fn probe_latency_recorded_separately() {
        let (tx, rx) = unbounded();
        let wst = Arc::new(Wst::new(1));
        let sel = Arc::new(SelMap::new());
        let clock = Clock::new();
        let h = spawn_one(rx, wst, sel, clock);
        tx.send(Task::Request {
            service_ns: 5_000,
            submitted_ns: clock.now_ns(),
            probe: true,
        })
        .unwrap();
        tx.send(Task::Shutdown).unwrap();
        let out = h.join().unwrap();
        assert_eq!(out.probe_latency.count(), 1);
        assert_eq!(out.request_latency.count(), 0);
    }
}
