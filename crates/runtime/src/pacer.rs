//! Deadline-based submission pacing.
//!
//! The driver's open-loop traffic generators need a fixed inter-arrival
//! gap. `thread::sleep(gap)` per iteration is the obvious way to get one,
//! but it compounds two errors: the OS routinely overshoots short sleeps
//! by tens of microseconds, and the overshoot *accumulates* because each
//! sleep is relative to whenever the previous iteration happened to
//! finish. At a 30 µs target gap the realised rate can be off by 2–3×.
//!
//! [`Pacer`] fixes both. Deadlines are absolute — the `n`-th tick is due
//! at `start + n * interval`, independent of jitter in earlier ticks — and
//! each wait parks the thread only to within a small window of the
//! deadline, busy-spinning the rest. Parking keeps the CPU free for the
//! worker threads the generator is driving; the spin tail gives the
//! precision `sleep` cannot. A caller that falls behind schedule is not
//! punished: overdue ticks return immediately until the schedule is
//! caught up, preserving the long-run rate.

use std::time::{Duration, Instant};

/// Default spin window: park until this close to the deadline, then spin.
/// 50 µs comfortably covers typical `sleep`/`park_timeout` overshoot on a
/// loaded box without burning meaningful CPU.
const DEFAULT_SPIN_WINDOW: Duration = Duration::from_micros(50);

/// A fixed-rate ticker with an absolute deadline schedule and a
/// park-then-spin wait.
///
/// ```
/// use hermes_runtime::Pacer;
/// use std::time::{Duration, Instant};
///
/// let mut pacer = Pacer::new(Duration::from_micros(200));
/// let start = Instant::now();
/// for _ in 0..5 {
///     pacer.pace(); // blocks until the next 200 µs boundary
/// }
/// assert!(start.elapsed() >= Duration::from_micros(1000));
/// ```
#[derive(Debug)]
pub struct Pacer {
    /// Next absolute deadline.
    next: Instant,
    interval: Duration,
    spin_window: Duration,
    /// Creation instant — the zero point for trace timestamps.
    epoch: Instant,
    /// Ticks whose deadline had already passed when `pace` was entered.
    missed: u64,
    /// Largest observed overshoot past a deadline, ns.
    max_overshoot_ns: u64,
}

impl Pacer {
    /// Pacer ticking every `interval`, first tick one interval from now.
    pub fn new(interval: Duration) -> Self {
        Self::with_spin_window(interval, DEFAULT_SPIN_WINDOW)
    }

    /// Pacer with an explicit spin window (the tail of each wait that
    /// busy-spins instead of parking). A zero window parks all the way to
    /// the deadline — lowest CPU, sleep-grade precision.
    pub fn with_spin_window(interval: Duration, spin_window: Duration) -> Self {
        let epoch = Instant::now();
        Self {
            next: epoch + interval,
            interval,
            spin_window,
            epoch,
            missed: 0,
            max_overshoot_ns: 0,
        }
    }

    /// The configured inter-tick interval.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Deadlines that had already passed when [`Pacer::pace`] was entered —
    /// the caller fell at least one full wait behind schedule. On-time ticks
    /// (the wait itself crossing the deadline) do not count.
    pub fn missed_deadlines(&self) -> u64 {
        self.missed
    }

    /// Largest single overshoot past a missed deadline, in nanoseconds.
    pub fn max_overshoot_ns(&self) -> u64 {
        self.max_overshoot_ns
    }

    /// Block until the current deadline, then advance the schedule by one
    /// interval. Returns how late the deadline was observed (zero when the
    /// wait completed on time; positive when the caller is running behind
    /// schedule and the tick fired immediately).
    pub fn pace(&mut self) -> Duration {
        let deadline = self.next;
        self.next += self.interval;
        let entry = Instant::now();
        if entry > deadline {
            // Missed: the schedule slipped before we even started waiting.
            let overshoot = entry - deadline;
            let overshoot_ns = overshoot.as_nanos() as u64;
            self.missed += 1;
            self.max_overshoot_ns = self.max_overshoot_ns.max(overshoot_ns);
            hermes_trace::trace_event!(
                deadline.duration_since(self.epoch).as_nanos() as u64,
                hermes_trace::EventKind::PacerMiss,
                hermes_trace::CONTROL_LANE,
                overshoot_ns,
                self.missed
            );
            hermes_trace::trace_count!(hermes_trace::CounterId::PacerDeadlineMisses);
            hermes_trace::trace_count_max!(
                hermes_trace::CounterId::PacerMaxOvershootNs,
                overshoot_ns
            );
            return overshoot;
        }
        loop {
            let now = Instant::now();
            if now >= deadline {
                return now - deadline;
            }
            let remaining = deadline - now;
            if remaining > self.spin_window {
                // Coarse phase: park, leaving the spin window as margin
                // for overshoot. Spurious wakeups just re-enter the loop.
                std::thread::park_timeout(remaining - self.spin_window);
            } else {
                // Fine phase: busy-wait the last few microseconds.
                std::hint::spin_loop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_the_long_run_rate() {
        let interval = Duration::from_micros(500);
        let ticks = 20u32;
        let mut pacer = Pacer::new(interval);
        let start = Instant::now();
        for _ in 0..ticks {
            pacer.pace();
        }
        let elapsed = start.elapsed();
        let target = interval * ticks;
        assert!(
            elapsed >= target,
            "finished early: {elapsed:?} for a {target:?} schedule"
        );
        // Absolute deadlines mean per-tick jitter must not accumulate:
        // even on a loaded CI box the whole run should track the schedule
        // far tighter than naive sleep's worst case.
        assert!(
            elapsed < target + Duration::from_millis(50),
            "schedule drifted: {elapsed:?} for a {target:?} schedule"
        );
    }

    #[test]
    fn overdue_ticks_fire_immediately_and_catch_up() {
        let interval = Duration::from_millis(1);
        let mut pacer = Pacer::new(interval);
        pacer.pace();
        // Fall three intervals behind schedule.
        std::thread::sleep(Duration::from_millis(4));
        let t = Instant::now();
        let lateness = pacer.pace();
        assert!(
            lateness >= Duration::from_millis(2),
            "lateness {lateness:?}"
        );
        // The overdue ticks must not each wait a full interval.
        pacer.pace();
        pacer.pace();
        assert!(
            t.elapsed() < Duration::from_millis(2),
            "catch-up ticks blocked: {:?}",
            t.elapsed()
        );
    }

    #[test]
    fn on_time_ticks_report_zero_or_tiny_lateness() {
        let mut pacer = Pacer::new(Duration::from_millis(2));
        let lateness = pacer.pace();
        assert!(lateness < Duration::from_millis(1), "lateness {lateness:?}");
    }

    #[test]
    fn miss_accounting_counts_overdue_ticks() {
        let interval = Duration::from_millis(1);
        let mut pacer = Pacer::new(interval);
        // The first tick may or may not miss depending on scheduler noise;
        // measure deltas from here on.
        pacer.pace();
        let base = pacer.missed_deadlines();
        // Fall several intervals behind: the next two catch-up ticks find
        // their deadlines already expired and must both count as misses.
        std::thread::sleep(Duration::from_millis(4));
        pacer.pace();
        pacer.pace();
        assert_eq!(pacer.missed_deadlines(), base + 2);
        assert!(
            pacer.max_overshoot_ns() >= 1_000_000,
            "max overshoot {} ns",
            pacer.max_overshoot_ns()
        );
    }

    #[test]
    fn zero_spin_window_still_paces() {
        let interval = Duration::from_micros(300);
        let mut pacer = Pacer::with_spin_window(interval, Duration::ZERO);
        let start = Instant::now();
        for _ in 0..4 {
            pacer.pace();
        }
        assert!(start.elapsed() >= interval * 4);
        assert_eq!(pacer.interval(), interval);
    }
}
