//! # hermes-lb
//!
//! A minimal but real multi-tenant L7 reverse proxy assembled from the
//! Hermes pieces — the kind of application the paper's LBs are (§2.1:
//! "parsing HTTP packets and routing requests based on user policies").
//!
//! * [`http`] — an incremental HTTP/1.1 request parser and response
//!   encoder over [`bytes`] buffers (request line, headers,
//!   `Content-Length` bodies).
//! * [`router`] — per-tenant forwarding rules (host + path-prefix →
//!   backend pool), longest-prefix-wins; the Fig. A5 "forwarding rules
//!   per port" made concrete.
//! * [`proxy`] — parse → route → pick a backend (round-robin with the §7
//!   randomized-restart fix) → forward → respond, with 400/404/502
//!   handling.
//! * [`server`] — a real TCP front end: an acceptor thread dispatches
//!   accepted connections to worker threads through the Hermes closed
//!   loop (shared WST, per-worker scheduling via the SDK, kernel-side
//!   bitmap dispatch), each worker running the Fig. 9 event-loop shape.
//! * [`relay`] — the backend data plane: the same front end, but instead
//!   of answering in-process each connection is admitted against a
//!   versioned [`hermes_backend::BackendPool`] snapshot, connected to a
//!   real backend (retrying the admitted candidate order on failure), and
//!   byte-relayed with half-close and backpressure handling.
//! * [`reactor`] — raw-syscall I/O event notification for the relay and
//!   the acceptor: an epoll set per worker (edge-triggered for relay
//!   legs, level-triggered for listeners), an eventfd waker for
//!   cross-thread hand-off, and splice(2) pipe plumbing for zero-copy
//!   byte moves. Non-Linux hosts get an API-compatible stub that reports
//!   itself unsupported.
//!
//! The substitution vs. production: the paper attaches dispatch at the
//! kernel's reuseport hook so the *kernel* places each SYN; a portable
//! std-only process cannot bind N reuseport sockets, so the acceptor
//! thread plays the kernel — it runs the same verified dispatch program
//! per connection and hands the socket to the chosen worker. Placement
//! decisions are byte-identical to the eBPF path.
//!
//! ```no_run
//! use hermes_lb::prelude::*;
//!
//! let mut router = Router::new();
//! router.add_rule(Rule::new().path_prefix("/api").pool("api-pool"));
//! router.add_rule(Rule::new().pool("static-pool"));
//! let mut proxy = Proxy::new(router);
//! proxy.add_pool("api-pool", vec![Box::new(EchoUpstream::new("api"))]);
//! proxy.add_pool("static-pool", vec![Box::new(EchoUpstream::new("static"))]);
//! let server = TcpLb::start("127.0.0.1:0", 4, proxy).unwrap();
//! println!("serving on {}", server.local_addr());
//! server.shutdown();
//! ```

pub mod http;
pub mod proxy;
pub mod reactor;
pub mod relay;
pub mod router;
pub mod server;

/// Convenient single import for examples.
pub mod prelude {
    pub use crate::http::{Request, Response, StatusCode};
    pub use crate::proxy::{EchoUpstream, Proxy, Upstream};
    pub use crate::relay::{RelayLb, RelayMode, RelayStats};
    pub use crate::router::{Router, Rule};
    pub use crate::server::TcpLb;
}
