//! The proxy core: parse → route → balance → forward → respond.
//!
//! Upstreams are pluggable ([`Upstream`]); within a pool the backend is
//! chosen round-robin with the §7 randomized-restart fix from
//! `hermes_backend`. Each worker thread owns its own `Proxy` clone
//! (workers share nothing but the WST), so `handle` needs `&mut self` and
//! no locks — the run-to-completion shape of the paper's workers.

use crate::http::{parse_request, HttpError, Request, Response, StatusCode};
use crate::router::Router;
use bytes::{Bytes, BytesMut};
use hermes_backend::{RestartPolicy, RoundRobin};
use std::collections::HashMap;
use std::sync::Arc;

/// A backend server: takes a request, produces a response.
pub trait Upstream: Send + Sync {
    /// Serve one request.
    fn handle(&self, req: &Request) -> Response;
}

/// A test/demo upstream echoing its name, the method, and the path.
pub struct EchoUpstream {
    name: String,
}

impl EchoUpstream {
    /// An upstream identifying itself as `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into() }
    }
}

impl Upstream for EchoUpstream {
    fn handle(&self, req: &Request) -> Response {
        Response::new(StatusCode::Ok)
            .header("x-upstream", self.name.clone())
            .body(format!("{} {} via {}", req.method, req.path(), self.name))
    }
}

/// One pool: servers plus the round-robin cursor.
struct Pool {
    servers: Vec<Arc<dyn Upstream>>,
    rr: RoundRobin,
}

/// The L7 proxy: router + pools. Cheap to clone per worker (upstreams are
/// shared via `Arc`, cursors are per-clone — exactly the per-worker
/// round-robin state of §7).
pub struct Proxy {
    router: Arc<Router>,
    pools: HashMap<String, Pool>,
}

impl Proxy {
    /// A proxy over a router with no pools yet.
    pub fn new(router: Router) -> Self {
        Self {
            router: Arc::new(router),
            pools: HashMap::new(),
        }
    }

    /// Register a pool of upstream servers.
    pub fn add_pool(&mut self, name: impl Into<String>, servers: Vec<Box<dyn Upstream>>) {
        assert!(!servers.is_empty(), "pool needs at least one server");
        let n = servers.len();
        self.pools.insert(
            name.into(),
            Pool {
                servers: servers.into_iter().map(Arc::from).collect(),
                rr: RoundRobin::new(n),
            },
        );
    }

    /// Clone for a worker, randomizing the round-robin start offsets (the
    /// §7 fix for synchronized restarts).
    pub fn for_worker(&self, worker: usize) -> Proxy {
        let mut pools = HashMap::new();
        for (name, pool) in &self.pools {
            let mut rr = RoundRobin::new(pool.servers.len());
            rr.update_list(
                worker,
                pool.servers.len(),
                RestartPolicy::Randomized {
                    seed: 0x48_45_52_4d,
                },
            );
            pools.insert(
                name.clone(),
                Pool {
                    servers: pool.servers.clone(),
                    rr,
                },
            );
        }
        Proxy {
            router: Arc::clone(&self.router),
            pools,
        }
    }

    /// Serve one already-parsed request.
    pub fn serve(&mut self, req: &Request) -> Response {
        let Some(pool_name) = self.router.route(req.host(), req.path()) else {
            return Response::new(StatusCode::NotFound).body("no route");
        };
        let Some(pool) = self.pools.get_mut(pool_name) else {
            // A rule names a pool that was never registered: upstream
            // misconfiguration, not client error.
            return Response::new(StatusCode::BadGateway).body("unknown pool");
        };
        let server = pool.rr.next_server();
        pool.servers[server].handle(req)
    }

    /// Drive the full byte-level exchange: feed `input` through the
    /// parser and return the wire bytes to write back. `None` means more
    /// input is needed (incomplete request).
    pub fn handle_bytes(&mut self, input: &mut BytesMut) -> Option<Bytes> {
        match parse_request(input) {
            Ok(Some(req)) => Some(self.serve(&req).encode()),
            Ok(None) => None,
            Err(e) => {
                let status = match e {
                    HttpError::BodyTooLarge | HttpError::HeadTooLarge => StatusCode::BadRequest,
                    HttpError::Malformed | HttpError::Version => StatusCode::BadRequest,
                };
                Some(Response::new(status).body(e.to_string()).encode())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::Rule;

    fn proxy() -> Proxy {
        let mut router = Router::new();
        router.add_rule(Rule::new().path_prefix("/api").pool("api"));
        router.add_rule(Rule::new().pool("web"));
        router.add_rule(Rule::new().path_prefix("/ghost").pool("missing"));
        let mut p = Proxy::new(router);
        p.add_pool(
            "api",
            vec![
                Box::new(EchoUpstream::new("api-0")),
                Box::new(EchoUpstream::new("api-1")),
            ],
        );
        p.add_pool("web", vec![Box::new(EchoUpstream::new("web-0"))]);
        p
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".into(),
            target: path.into(),
            headers: vec![],
            body: Bytes::new(),
        }
    }

    #[test]
    fn routes_and_balances() {
        let mut p = proxy();
        let a = p.serve(&get("/api/users"));
        let b = p.serve(&get("/api/users"));
        let (ua, ub) = (
            a.headers
                .iter()
                .find(|(n, _)| n == "x-upstream")
                .unwrap()
                .1
                .clone(),
            b.headers
                .iter()
                .find(|(n, _)| n == "x-upstream")
                .unwrap()
                .1
                .clone(),
        );
        assert_ne!(ua, ub, "round robin must alternate between api-0/api-1");
        assert_eq!(p.serve(&get("/other")).status, StatusCode::Ok);
    }

    #[test]
    fn unrouted_is_404_unregistered_pool_is_502() {
        let mut router = Router::new();
        router.add_rule(Rule::new().path_prefix("/ghost").pool("missing"));
        let mut p = Proxy::new(router);
        assert_eq!(p.serve(&get("/nowhere")).status, StatusCode::NotFound);
        assert_eq!(p.serve(&get("/ghost")).status, StatusCode::BadGateway);
    }

    #[test]
    fn byte_level_happy_path_and_errors() {
        let mut p = proxy();
        let mut b = BytesMut::from(&b"GET /api/x HTTP/1.1\r\nHost: h\r\n\r\n"[..]);
        let out = p.handle_bytes(&mut b).expect("complete request");
        assert!(std::str::from_utf8(&out)
            .unwrap()
            .starts_with("HTTP/1.1 200"));

        let mut partial = BytesMut::from(&b"GET /api"[..]);
        assert!(p.handle_bytes(&mut partial).is_none());

        let mut bad = BytesMut::from(&b"NOT HTTP AT ALL\r\n\r\n"[..]);
        let out = p.handle_bytes(&mut bad).expect("error response");
        assert!(std::str::from_utf8(&out)
            .unwrap()
            .starts_with("HTTP/1.1 400"));
    }

    #[test]
    fn worker_clones_start_at_different_offsets() {
        let base = proxy();
        let starts: std::collections::HashSet<String> = (0..8)
            .map(|w| {
                let mut p = base.for_worker(w);
                p.serve(&get("/api/x"))
                    .headers
                    .iter()
                    .find(|(n, _)| n == "x-upstream")
                    .unwrap()
                    .1
                    .clone()
            })
            .collect();
        // With 2 servers and 8 workers both offsets must appear — the §7
        // fix in action (synchronized restarts would all start at api-0).
        assert_eq!(starts.len(), 2, "randomized offsets missing: {starts:?}");
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_pool_rejected() {
        Proxy::new(Router::new()).add_pool("p", vec![]);
    }
}
