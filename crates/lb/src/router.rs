//! Per-tenant forwarding rules: host + path-prefix → backend pool.
//!
//! §2.1: the LB "parses HTTP packets and routes requests based on
//! user policies"; Fig. A5 shows tenants carrying anywhere from one to
//! thousands of such rules. Matching semantics: a rule matches when its
//! host constraint (exact, or `*.suffix` wildcard, or absent) and its
//! path prefix both match; among matches the most specific wins (longest
//! path prefix, host-constrained over host-less).

/// One forwarding rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rule {
    host: Option<String>,
    path_prefix: String,
    pool: String,
}

impl Rule {
    /// A rule matching everything, routing to an (unset) pool — configure
    /// with the builder methods.
    pub fn new() -> Self {
        Self {
            host: None,
            path_prefix: "/".into(),
            pool: String::new(),
        }
    }

    /// Constrain to a host: exact (`example.com`) or wildcard
    /// (`*.example.com`, matching any single-or-deeper subdomain).
    pub fn host(mut self, host: impl Into<String>) -> Self {
        self.host = Some(host.into().to_ascii_lowercase());
        self
    }

    /// Constrain to a path prefix (must start with `/`).
    pub fn path_prefix(mut self, prefix: impl Into<String>) -> Self {
        let p = prefix.into();
        assert!(p.starts_with('/'), "path prefix must start with '/'");
        self.path_prefix = p;
        self
    }

    /// Route matches to this pool.
    pub fn pool(mut self, pool: impl Into<String>) -> Self {
        self.pool = pool.into();
        self
    }

    fn matches(&self, host: Option<&str>, path: &str) -> bool {
        if !path.starts_with(&self.path_prefix) {
            return false;
        }
        match &self.host {
            None => true,
            Some(pattern) => {
                let Some(host) = host else { return false };
                let host = host.to_ascii_lowercase();
                if let Some(suffix) = pattern.strip_prefix("*.") {
                    host.len() > suffix.len()
                        && host.ends_with(suffix)
                        && host.as_bytes()[host.len() - suffix.len() - 1] == b'.'
                } else {
                    host == *pattern
                }
            }
        }
    }

    /// Specificity for tie-breaking: longer prefixes beat shorter; a host
    /// constraint beats none; exact host beats wildcard.
    fn specificity(&self) -> (usize, u8) {
        let host_rank = match &self.host {
            Some(h) if !h.starts_with("*.") => 2,
            Some(_) => 1,
            None => 0,
        };
        (self.path_prefix.len(), host_rank)
    }
}

impl Default for Rule {
    fn default() -> Self {
        Self::new()
    }
}

/// An ordered rule set with most-specific-wins matching.
#[derive(Clone, Debug, Default)]
pub struct Router {
    rules: Vec<Rule>,
}

impl Router {
    /// Empty router (everything 404s).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a rule.
    ///
    /// # Panics
    /// Panics when the rule has no pool — a silent blackhole rule is a
    /// configuration bug.
    pub fn add_rule(&mut self, rule: Rule) {
        assert!(!rule.pool.is_empty(), "rule must name a pool");
        self.rules.push(rule);
        // Keep most-specific-first so lookup is first-match.
        self.rules
            .sort_by_key(|r| std::cmp::Reverse(r.specificity()));
    }

    /// Number of rules (the Fig. A5 distribution's unit).
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Route a request by host/path; `None` ⇒ 404.
    pub fn route(&self, host: Option<&str>, path: &str) -> Option<&str> {
        self.rules
            .iter()
            .find(|r| r.matches(host, path))
            .map(|r| r.pool.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router() -> Router {
        let mut r = Router::new();
        r.add_rule(Rule::new().path_prefix("/api/v2").pool("api-v2"));
        r.add_rule(Rule::new().path_prefix("/api").pool("api"));
        r.add_rule(Rule::new().host("admin.example.com").pool("admin"));
        r.add_rule(
            Rule::new()
                .host("*.example.com")
                .path_prefix("/img")
                .pool("cdn"),
        );
        r.add_rule(Rule::new().pool("default"));
        r
    }

    #[test]
    fn longest_prefix_wins() {
        let r = router();
        assert_eq!(r.route(None, "/api/v2/users"), Some("api-v2"));
        assert_eq!(r.route(None, "/api/other"), Some("api"));
        assert_eq!(r.route(None, "/"), Some("default"));
    }

    #[test]
    fn host_rules() {
        let r = router();
        assert_eq!(r.route(Some("admin.example.com"), "/"), Some("admin"));
        assert_eq!(r.route(Some("ADMIN.EXAMPLE.COM"), "/"), Some("admin"));
        assert_eq!(r.route(Some("a.example.com"), "/img/x.png"), Some("cdn"));
        // Wildcard requires a real subdomain.
        assert_eq!(r.route(Some("example.com"), "/img/x.png"), Some("default"));
        // Host rules never match hostless requests.
        assert_eq!(r.route(None, "/img/x.png"), Some("default"));
    }

    #[test]
    fn specificity_prefers_exact_host_over_wildcard() {
        let mut r = Router::new();
        r.add_rule(Rule::new().host("*.ex.com").pool("wild"));
        r.add_rule(Rule::new().host("a.ex.com").pool("exact"));
        assert_eq!(r.route(Some("a.ex.com"), "/"), Some("exact"));
        assert_eq!(r.route(Some("b.ex.com"), "/"), Some("wild"));
    }

    #[test]
    fn empty_router_routes_nothing() {
        assert_eq!(Router::new().route(Some("x"), "/"), None);
    }

    #[test]
    #[should_panic(expected = "must name a pool")]
    fn rejects_poolless_rule() {
        Router::new().add_rule(Rule::new());
    }

    #[test]
    #[should_panic(expected = "start with '/'")]
    fn rejects_relative_prefix() {
        let _ = Rule::new().path_prefix("api");
    }

    #[test]
    fn fig_a5_scale_many_rules_still_route() {
        // A configuration-heavy tenant (the Fig. A5 tail): thousands of
        // rules still resolve correctly and deterministically.
        let mut r = Router::new();
        for i in 0..2_000 {
            r.add_rule(
                Rule::new()
                    .path_prefix(format!("/svc{i}"))
                    .pool(format!("p{i}")),
            );
        }
        assert_eq!(r.rule_count(), 2_000);
        assert_eq!(r.route(None, "/svc1234/x"), Some("p1234"));
        assert_eq!(r.route(None, "/unknown"), None);
    }
}
