//! Userspace I/O event notification over raw epoll syscalls.
//!
//! The relay data plane ([`crate::relay`]) is the one place this
//! reproduction touches *real* kernel readiness machinery — the very
//! subsystem the paper is about. This module wraps exactly the five
//! primitives it needs, declared straight against the C runtime in the
//! same hand-rolled style as the JIT's `execmem.rs` (no new crate
//! dependencies):
//!
//! * [`Reactor`] — an `epoll` instance plus an `eventfd` wake channel.
//!   Relay sockets register **edge-triggered** (`EPOLLIN | EPOLLOUT |
//!   EPOLLRDHUP | EPOLLET`); the owning worker must therefore drain each
//!   readiness edge to `EAGAIN` before blocking again, which is what the
//!   relay's pump loop does. Listeners register **level-triggered**
//!   read-only, so an undrained accept backlog keeps the acceptor awake.
//! * [`Waker`] — the cross-thread half of the eventfd: the acceptor
//!   bumps it after queueing a connection on a worker's channel, turning
//!   the hand-off into an epoll event instead of a timeout race. The fd
//!   is shared by `Arc`, so a waker can never write into a recycled
//!   descriptor after its reactor died.
//! * [`PipePair`] — a nonblocking pipe for the splice(2) zero-copy path:
//!   bytes move socket → pipe → socket entirely inside the kernel, with
//!   [`splice_to_pipe`]/[`splice_from_pipe`] reporting would-block, EOF,
//!   and not-supported as distinct outcomes so the relay can fall back
//!   to its scratch-buffer copy path.
//!
//! Non-Linux hosts get a stub whose constructors report `Unsupported`
//! ([`supported`] returns `false`); the relay then runs its portable
//! sleep-poll loop and the copy path, preserving behaviour exactly.

#[cfg(target_os = "linux")]
mod imp {
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::Arc;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLLET: u32 = 1 << 31;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;
    const O_NONBLOCK: i32 = 0o4000;
    const O_CLOEXEC: i32 = 0o2000000;
    const SPLICE_F_MOVE: u32 = 1;
    const SPLICE_F_NONBLOCK: u32 = 2;
    const EINVAL: i32 = 22;
    const ENOSYS: i32 = 38;
    /// `F_SETPIPE_SZ` (`F_LINUX_SPECIFIC_BASE + 7`).
    const F_SETPIPE_SZ: i32 = 1031;

    /// Capacity requested for splice staging pipes: 1 MiB, the default
    /// unprivileged ceiling (`/proc/sys/fs/pipe-max-size`). The stock
    /// 64 KiB pipe throttles the splice path below the copy path on fast
    /// links; a deeper pipe lets each wakeup stage a full socket buffer.
    /// Best-effort — a refused resize just keeps the 64 KiB default.
    pub const PIPE_CAPACITY: usize = 1 << 20;

    /// Kernel ABI `struct epoll_event`. Packed on x86-64 (the kernel
    /// keeps the 32-bit layout there); naturally aligned elsewhere
    /// (e.g. aarch64) — mirroring the platform headers.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn pipe2(fds: *mut i32, flags: i32) -> i32;
        fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
        fn splice(
            fd_in: i32,
            off_in: *mut i64,
            fd_out: i32,
            off_out: *mut i64,
            len: usize,
            flags: u32,
        ) -> isize;
        fn read(fd: i32, buf: *mut core::ffi::c_void, count: usize) -> isize;
        fn write(fd: i32, buf: *const core::ffi::c_void, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    /// This platform has the reactor and splice fast path.
    pub fn supported() -> bool {
        true
    }

    /// Event token reserved for the reactor's own wake eventfd.
    pub const WAKE_TOKEN: u64 = u64::MAX;

    /// Number of ready events fetched per `epoll_wait` — sized to the
    /// workspace dispatch batch (64 connections → 128 relay legs) plus
    /// the wake channel.
    const EVENTS_PER_WAIT: usize = 129;

    /// One decoded readiness event.
    #[derive(Clone, Copy, Debug)]
    pub struct Event {
        /// The registration token (`WAKE_TOKEN` for the wake channel).
        pub token: u64,
        /// `EPOLLIN`: bytes (or an accept) are waiting.
        pub readable: bool,
        /// `EPOLLOUT`: the socket's send buffer has room again.
        pub writable: bool,
        /// `EPOLLRDHUP | EPOLLHUP | EPOLLERR`: the peer is gone or going.
        pub closed: bool,
    }

    /// An fd owned jointly by a [`Reactor`] and any [`Waker`]s cloned
    /// from it; closed when the last owner drops.
    #[derive(Debug)]
    struct OwnedFd(RawFd);

    impl Drop for OwnedFd {
        fn drop(&mut self) {
            // SAFETY: `self.0` was returned by eventfd() and is owned
            // exclusively by this handle; Drop runs at most once.
            unsafe { close(self.0) };
        }
    }

    /// Cross-thread wake handle: bumping it makes the owning reactor's
    /// `wait` return with a [`WAKE_TOKEN`] event.
    #[derive(Clone, Debug)]
    pub struct Waker(Arc<OwnedFd>);

    impl Waker {
        /// Post one wake. Lossy coalescing is fine: the eventfd counter
        /// saturates and the reactor drains it whole.
        pub fn wake(&self) {
            let one: u64 = 1;
            // SAFETY: the fd is alive (Arc-owned) and `one` is a valid
            // 8-byte buffer — the eventfd write contract.
            unsafe {
                write(
                    self.0 .0,
                    (&raw const one).cast::<core::ffi::c_void>(),
                    std::mem::size_of::<u64>(),
                )
            };
        }
    }

    /// An epoll instance plus its eventfd wake channel.
    pub struct Reactor {
        epfd: RawFd,
        wake: Arc<OwnedFd>,
        /// Scratch for `epoll_wait` output, reused across calls.
        scratch: Vec<EpollEvent>,
    }

    impl std::fmt::Debug for Reactor {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Reactor")
                .field("epfd", &self.epfd)
                .field("wake", &self.wake)
                .finish_non_exhaustive()
        }
    }

    impl Reactor {
        /// Create the epoll set and register the wake eventfd
        /// (level-triggered read; drained explicitly via [`drain_wake`]).
        ///
        /// [`drain_wake`]: Reactor::drain_wake
        pub fn new() -> io::Result<Reactor> {
            // SAFETY: plain syscall, no pointers.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: plain syscall, no pointers.
            let efd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if efd < 0 {
                let err = io::Error::last_os_error();
                // SAFETY: epfd was just created and is otherwise unowned.
                unsafe { close(epfd) };
                return Err(err);
            }
            let r = Reactor {
                epfd,
                wake: Arc::new(OwnedFd(efd)),
                scratch: vec![
                    EpollEvent {
                        events: 0,
                        data: 0
                    };
                    EVENTS_PER_WAIT
                ],
            };
            r.ctl(EPOLL_CTL_ADD, efd, EPOLLIN, WAKE_TOKEN)?;
            Ok(r)
        }

        fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent { events, data: token };
            // SAFETY: `ev` is a live, correctly-laid-out epoll_event for
            // the duration of the call; the kernel copies it out.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// A handle other threads can use to wake this reactor.
        pub fn waker(&self) -> Waker {
            Waker(Arc::clone(&self.wake))
        }

        /// Register a relay socket edge-triggered for both directions
        /// plus peer-half-close. The owner must pump to `EAGAIN` after
        /// every event (and once right after registering) or edges are
        /// lost — that is the contract the relay's pump loop keeps.
        pub fn register(&self, fd: RawFd, token: u64) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_ADD,
                fd,
                EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET,
                token,
            )
        }

        /// Register a listener level-triggered read-only: the reactor
        /// stays ready while the accept backlog is non-empty, so a
        /// burst-capped acceptor never strands connections.
        pub fn register_read(&self, fd: RawFd, token: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, EPOLLIN, token)
        }

        /// Remove a registration. Closing the fd would drop it from the
        /// epoll set anyway; deregistering first keeps already-fetched
        /// stale events the only spurious source.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Block up to `timeout_ms` (0 = poll, -1 = forever) for ready
        /// events, decoded into `out`. Returns the event count; EINTR
        /// reads as zero events.
        pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
            out.clear();
            // SAFETY: `scratch` is EVENTS_PER_WAIT valid epoll_events;
            // the kernel writes at most that many.
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.scratch.as_mut_ptr(),
                    EVENTS_PER_WAIT as i32,
                    timeout_ms,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            for ev in &self.scratch[..n as usize] {
                let bits = ev.events;
                out.push(Event {
                    token: ev.data,
                    readable: bits & EPOLLIN != 0,
                    writable: bits & EPOLLOUT != 0,
                    closed: bits & (EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                });
            }
            Ok(n as usize)
        }

        /// Reset the wake eventfd so the next [`Waker::wake`] produces a
        /// fresh event. Coalesced wakes collapse into the one read.
        pub fn drain_wake(&self) {
            let mut buf: u64 = 0;
            // SAFETY: the fd is alive and `buf` is a valid 8-byte
            // buffer — the eventfd read contract (nonblocking: EAGAIN
            // when already drained is fine and ignored).
            unsafe {
                read(
                    self.wake.0,
                    (&raw mut buf).cast::<core::ffi::c_void>(),
                    std::mem::size_of::<u64>(),
                )
            };
        }
    }

    impl Drop for Reactor {
        fn drop(&mut self) {
            // SAFETY: `epfd` came from epoll_create1 and is owned
            // exclusively by this reactor; Drop runs at most once. (The
            // wake eventfd is Arc-owned and closes with its last owner.)
            unsafe { close(self.epfd) };
        }
    }

    /// Outcome of one splice attempt.
    #[derive(Debug)]
    pub enum Splice {
        /// Bytes moved kernel-to-kernel.
        Moved(usize),
        /// The source had nothing / the sink had no room right now.
        WouldBlock,
        /// The source reached end-of-stream.
        Eof,
        /// The kernel cannot splice these fds (`EINVAL`/`ENOSYS`):
        /// demote this relay to the copy path.
        Unsupported,
    }

    /// A nonblocking kernel pipe: the in-kernel staging buffer for one
    /// relay direction's zero-copy path. Pooled per worker and recycled
    /// across connections (a pipe outlives no worker, and a recycled
    /// pipe is always drained — `buffered == 0` — by construction).
    #[derive(Debug)]
    pub struct PipePair {
        rd: RawFd,
        wr: RawFd,
    }

    impl PipePair {
        /// Open a fresh `O_NONBLOCK | O_CLOEXEC` pipe, grown to
        /// [`PIPE_CAPACITY`] when the kernel allows (best-effort: the
        /// 64 KiB default still works, just slower).
        pub fn new() -> io::Result<PipePair> {
            let mut fds = [0i32; 2];
            // SAFETY: `fds` is a valid 2-slot buffer for pipe2's out-params.
            let rc = unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: fds[0] is the live pipe read end we just opened;
            // F_SETPIPE_SZ takes an integer argument, no pointers.
            unsafe {
                fcntl(fds[0], F_SETPIPE_SZ, PIPE_CAPACITY as i32);
            }
            Ok(PipePair {
                rd: fds[0],
                wr: fds[1],
            })
        }

        /// Drain up to `len` already-spliced bytes into `buf` (used when
        /// demoting a direction to the copy path: pipe contents must
        /// move to the userspace buffer, never be dropped). Pipe data is
        /// immediately readable, so a short read only means less was
        /// buffered than asked.
        pub fn drain_into(&self, buf: &mut [u8]) -> io::Result<usize> {
            // SAFETY: `buf` is a live unique borrow of `buf.len()` bytes.
            let n = unsafe { read(self.rd, buf.as_mut_ptr().cast(), buf.len()) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::WouldBlock {
                    return Ok(0);
                }
                return Err(err);
            }
            Ok(n as usize)
        }
    }

    impl Drop for PipePair {
        fn drop(&mut self) {
            // SAFETY: both fds came from pipe2 and are owned exclusively
            // by this pair; Drop runs at most once.
            unsafe {
                close(self.rd);
                close(self.wr);
            }
        }
    }

    fn splice_result(n: isize, zero_is_eof: bool) -> io::Result<Splice> {
        if n > 0 {
            return Ok(Splice::Moved(n as usize));
        }
        if n == 0 {
            return Ok(if zero_is_eof {
                Splice::Eof
            } else {
                Splice::WouldBlock
            });
        }
        let err = io::Error::last_os_error();
        match err.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted => Ok(Splice::WouldBlock),
            _ if matches!(err.raw_os_error(), Some(EINVAL) | Some(ENOSYS)) => {
                Ok(Splice::Unsupported)
            }
            _ => Err(err),
        }
    }

    /// Splice up to `len` bytes from a socket into the pipe (the fill
    /// half). `Eof` means the peer half-closed.
    pub fn splice_to_pipe(src: RawFd, pipe: &PipePair, len: usize) -> io::Result<Splice> {
        // SAFETY: both fds are alive (owned by caller/pair); null
        // offsets are required for socket/pipe ends.
        let n = unsafe {
            splice(
                src,
                std::ptr::null_mut(),
                pipe.wr,
                std::ptr::null_mut(),
                len,
                SPLICE_F_MOVE | SPLICE_F_NONBLOCK,
            )
        };
        splice_result(n, true)
    }

    /// Splice up to `len` buffered bytes from the pipe out to a socket
    /// (the flush half). `WouldBlock` is the destination's backpressure.
    pub fn splice_from_pipe(pipe: &PipePair, dst: RawFd, len: usize) -> io::Result<Splice> {
        // SAFETY: both fds are alive (owned by pair/caller); null
        // offsets are required for socket/pipe ends.
        let n = unsafe {
            splice(
                pipe.rd,
                std::ptr::null_mut(),
                dst,
                std::ptr::null_mut(),
                len,
                SPLICE_F_MOVE | SPLICE_F_NONBLOCK,
            )
        };
        splice_result(n, false)
    }

    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    extern "C" {
        fn clock_gettime(clk: i32, tp: *mut Timespec) -> i32;
    }

    /// CPU time consumed by the calling thread, in nanoseconds. The
    /// relay workers sample this each loop pass so [`crate::relay::
    /// RelayStats`] can report bytes moved *per CPU-second* — the metric
    /// where zero-copy shows up even when the wire itself (e.g.
    /// loopback) is memcpy-bound on both endpoints.
    pub fn thread_cpu_ns() -> u64 {
        let mut ts = Timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        // SAFETY: `ts` outlives the call; CLOCK_THREAD_CPUTIME_ID is
        // valid on every Linux the workspace targets.
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
        if rc != 0 {
            return 0;
        }
        ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use std::io;
    use std::os::fd::RawFd;

    /// Epoll is Linux-only: the relay runs its portable sleep-poll loop.
    pub fn supported() -> bool {
        false
    }

    /// Event token reserved for the reactor's own wake eventfd.
    pub const WAKE_TOKEN: u64 = u64::MAX;

    /// Capacity the Linux implementation requests for splice pipes —
    /// kept here so capacity-derived sizing compiles everywhere.
    pub const PIPE_CAPACITY: usize = 1 << 20;

    /// One decoded readiness event (never produced on this platform).
    #[derive(Clone, Copy, Debug)]
    pub struct Event {
        /// The registration token.
        pub token: u64,
        /// Readiness to read.
        pub readable: bool,
        /// Readiness to write.
        pub writable: bool,
        /// Peer gone.
        pub closed: bool,
    }

    /// Stub: wake channels require Linux.
    #[derive(Clone, Debug)]
    pub struct Waker(std::convert::Infallible);

    impl Waker {
        /// Unreachable on non-Linux targets (no constructor succeeds).
        pub fn wake(&self) {
            match self.0 {}
        }
    }

    /// Stub: epoll requires Linux.
    #[derive(Debug)]
    pub struct Reactor(std::convert::Infallible);

    impl Reactor {
        /// Always fails on non-Linux targets.
        pub fn new() -> io::Result<Reactor> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "epoll reactor requires Linux",
            ))
        }

        /// Unreachable on non-Linux targets.
        pub fn waker(&self) -> Waker {
            match self.0 {}
        }

        /// Unreachable on non-Linux targets.
        pub fn register(&self, _fd: RawFd, _token: u64) -> io::Result<()> {
            match self.0 {}
        }

        /// Unreachable on non-Linux targets.
        pub fn register_read(&self, _fd: RawFd, _token: u64) -> io::Result<()> {
            match self.0 {}
        }

        /// Unreachable on non-Linux targets.
        pub fn deregister(&self, _fd: RawFd) -> io::Result<()> {
            match self.0 {}
        }

        /// Unreachable on non-Linux targets.
        pub fn wait(&mut self, _out: &mut Vec<Event>, _timeout_ms: i32) -> io::Result<usize> {
            match self.0 {}
        }

        /// Unreachable on non-Linux targets.
        pub fn drain_wake(&self) {
            match self.0 {}
        }
    }

    /// Outcome of one splice attempt (never produced on this platform).
    #[derive(Debug)]
    pub enum Splice {
        /// Bytes moved kernel-to-kernel.
        Moved(usize),
        /// Nothing to move right now.
        WouldBlock,
        /// Source end-of-stream.
        Eof,
        /// Kernel cannot splice these fds.
        Unsupported,
    }

    /// Stub: splice pipes require Linux.
    #[derive(Debug)]
    pub struct PipePair(std::convert::Infallible);

    impl PipePair {
        /// Always fails on non-Linux targets.
        pub fn new() -> io::Result<PipePair> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "splice pipes require Linux",
            ))
        }

        /// Unreachable on non-Linux targets.
        pub fn drain_into(&self, _buf: &mut [u8]) -> io::Result<usize> {
            match self.0 {}
        }
    }

    /// Unreachable on non-Linux targets (no [`PipePair`] exists).
    pub fn splice_to_pipe(_src: RawFd, pipe: &PipePair, _len: usize) -> io::Result<Splice> {
        match pipe.0 {}
    }

    /// Unreachable on non-Linux targets (no [`PipePair`] exists).
    pub fn splice_from_pipe(pipe: &PipePair, _dst: RawFd, _len: usize) -> io::Result<Splice> {
        match pipe.0 {}
    }

    /// Stub: per-thread CPU accounting is only wired up on Linux.
    pub fn thread_cpu_ns() -> u64 {
        0
    }
}

pub use imp::{
    splice_from_pipe, splice_to_pipe, supported, thread_cpu_ns, Event, PipePair, Reactor, Splice,
    Waker, PIPE_CAPACITY, WAKE_TOKEN,
};

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn waker_wakes_and_drains() {
        let mut r = Reactor::new().expect("epoll");
        let mut events = Vec::new();
        // Nothing pending: a zero-timeout wait returns no events.
        assert_eq!(r.wait(&mut events, 0).unwrap(), 0);
        let w = r.waker();
        w.wake();
        w.wake(); // coalesces into the same eventfd counter
        let n = r.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, WAKE_TOKEN);
        assert!(events[0].readable);
        r.drain_wake();
        assert_eq!(r.wait(&mut events, 0).unwrap(), 0, "drained wake re-fires");
        // A post-drain wake produces a fresh event.
        w.wake();
        assert_eq!(r.wait(&mut events, 1000).unwrap(), 1);
    }

    #[test]
    fn socket_readiness_is_edge_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut r = Reactor::new().expect("epoll");
        r.register(server.as_raw_fd(), 7).unwrap();
        let mut events = Vec::new();
        // Registration reports the initial writable edge.
        let n = r.wait(&mut events, 1000).unwrap();
        assert!(n >= 1);
        assert!(events.iter().all(|e| e.token == 7));

        client.write_all(b"ping").unwrap();
        let n = r.wait(&mut events, 1000).unwrap();
        assert!(n >= 1, "no event for arriving bytes");
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        drop(client); // peer close → EPOLLRDHUP/EPOLLHUP edge
        let n = r.wait(&mut events, 1000).unwrap();
        assert!(n >= 1, "no event for peer close");
        assert!(events.iter().any(|e| e.token == 7 && e.closed));

        r.deregister(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn listener_registration_is_level_triggered() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut r = Reactor::new().expect("epoll");
        r.register_read(listener.as_raw_fd(), 3).unwrap();
        let _c = TcpStream::connect(addr).unwrap();
        let mut events = Vec::new();
        // Level-triggered: while the backlog is non-empty, every wait
        // reports readiness — an accept burst cap can't strand it.
        for _ in 0..2 {
            let n = r.wait(&mut events, 1000).unwrap();
            assert_eq!(n, 1);
            assert!(events[0].readable && events[0].token == 3);
        }
    }

    #[test]
    fn splice_moves_socket_bytes_through_a_pipe() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        let listener2 = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr2 = listener2.local_addr().unwrap();
        let client2 = TcpStream::connect(addr2).unwrap();
        let (sink, _) = listener2.accept().unwrap();
        sink.set_nonblocking(true).unwrap();

        let pipe = PipePair::new().expect("pipe2");
        // Empty source: would-block, not EOF.
        assert!(matches!(
            splice_to_pipe(server.as_raw_fd(), &pipe, 4096).unwrap(),
            Splice::WouldBlock
        ));
        client.write_all(b"zero-copy").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        let n = match splice_to_pipe(server.as_raw_fd(), &pipe, 4096).unwrap() {
            Splice::Moved(n) => n,
            other => panic!("expected Moved, got {other:?}"),
        };
        assert_eq!(n, 9);
        let m = match splice_from_pipe(&pipe, sink.as_raw_fd(), n).unwrap() {
            Splice::Moved(m) => m,
            other => panic!("expected Moved, got {other:?}"),
        };
        assert_eq!(m, 9);
        use std::io::Read;
        let mut got = [0u8; 16];
        let mut c2 = client2;
        c2.set_read_timeout(Some(std::time::Duration::from_secs(2)))
            .unwrap();
        let r = c2.read(&mut got).unwrap();
        assert_eq!(&got[..r], b"zero-copy");

        // Peer half-close reads as Eof through splice.
        client.shutdown(std::net::Shutdown::Write).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(matches!(
            splice_to_pipe(server.as_raw_fd(), &pipe, 4096).unwrap(),
            Splice::Eof
        ));
    }

    #[test]
    fn pipe_drain_recovers_buffered_bytes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        let pipe = PipePair::new().unwrap();
        client.write_all(b"stranded").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        let n = match splice_to_pipe(server.as_raw_fd(), &pipe, 4096).unwrap() {
            Splice::Moved(n) => n,
            other => panic!("expected Moved, got {other:?}"),
        };
        // The copy-path demotion move: buffered pipe bytes must come
        // back out intact through a plain read.
        let mut buf = [0u8; 64];
        let got = pipe.drain_into(&mut buf).unwrap();
        assert_eq!(&buf[..got], b"stranded");
        assert_eq!(got, n);
        assert_eq!(pipe.drain_into(&mut buf).unwrap(), 0, "pipe not empty");
    }
}
