//! Incremental HTTP/1.1 parsing and encoding over [`bytes`] buffers.
//!
//! Scope: what an L7 LB's hot path needs — request line, headers,
//! `Content-Length` bodies, and response encoding. Deliberately not a
//! general HTTP implementation (no chunked encoding, no trailers, no
//! HTTP/2): the paper's LB terminates and routes; this parser gives the
//! routing layer its method/target/host without pulling a dependency.

use bytes::{BufMut, Bytes, BytesMut};

/// Maximum accepted head (request line + headers) size, an LB-style
/// defensive limit.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Maximum accepted body size.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed HTTP/1.1 request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Method token (`GET`, `POST`, ...), uppercase as received.
    pub method: String,
    /// Request target (origin-form path + query).
    pub target: String,
    /// Header name/value pairs in arrival order (names lower-cased).
    pub headers: Vec<(String, String)>,
    /// Body bytes (`Content-Length`-delimited; empty if none).
    pub body: Bytes,
}

impl Request {
    /// First value of header `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The `Host` header, as routing wants it (port stripped).
    pub fn host(&self) -> Option<&str> {
        self.header("host")
            .map(|h| h.split(':').next().unwrap_or(h))
    }

    /// Path component of the target (query stripped).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }
}

/// Parse errors ⇒ a 400 response and connection close.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line or header.
    Malformed,
    /// Head exceeded [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// Body exceeded [`MAX_BODY_BYTES`] or bad `Content-Length`.
    BodyTooLarge,
    /// Unsupported version (only HTTP/1.0 and 1.1).
    Version,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed => write!(f, "malformed request"),
            HttpError::HeadTooLarge => write!(f, "request head too large"),
            HttpError::BodyTooLarge => write!(f, "request body too large"),
            HttpError::Version => write!(f, "unsupported http version"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Try to parse one request from the front of `buf`.
///
/// Returns `Ok(None)` when more bytes are needed (the incremental
/// contract: callers keep reading from the socket and retry). On success
/// the consumed bytes are split off `buf`, so pipelined requests parse on
/// subsequent calls.
///
/// Each retry rescans the buffer for the head terminator; worst case
/// (a head trickled byte-by-byte) is O(MAX_HEAD_BYTES²) per connection —
/// bounded, and the server's per-connection deadline caps the wall time,
/// but callers feeding large chunks amortize it away.
pub fn parse_request(buf: &mut BytesMut) -> Result<Option<Request>, HttpError> {
    // Find end of head: CRLFCRLF.
    let Some(head_end) = find_subsequence(buf, b"\r\n\r\n") else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        return Ok(None);
    };
    if head_end > MAX_HEAD_BYTES {
        return Err(HttpError::HeadTooLarge);
    }
    // Parse into owned values inside a scope so the borrow of `buf` ends
    // before `split_to` consumes from it.
    let (method, target, headers, content_length) = {
        let head = &buf[..head_end];
        let head_str = std::str::from_utf8(head).map_err(|_| HttpError::Malformed)?;
        let mut lines = head_str.split("\r\n");
        let request_line = lines.next().ok_or(HttpError::Malformed)?;
        let mut parts = request_line.split(' ');
        let method = parts.next().ok_or(HttpError::Malformed)?;
        let target = parts.next().ok_or(HttpError::Malformed)?;
        let version = parts.next().ok_or(HttpError::Malformed)?;
        if parts.next().is_some() || method.is_empty() || target.is_empty() {
            return Err(HttpError::Malformed);
        }
        if version != "HTTP/1.1" && version != "HTTP/1.0" {
            return Err(HttpError::Version);
        }
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        for line in lines {
            let (name, value) = line.split_once(':').ok_or(HttpError::Malformed)?;
            if name.is_empty() || name.contains(' ') {
                return Err(HttpError::Malformed);
            }
            let name = name.to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().map_err(|_| HttpError::Malformed)?;
                if content_length > MAX_BODY_BYTES {
                    return Err(HttpError::BodyTooLarge);
                }
            }
            headers.push((name, value));
        }
        (
            method.to_string(),
            target.to_string(),
            headers,
            content_length,
        )
    };
    let total = head_end + 4 + content_length;
    if buf.len() < total {
        return Ok(None); // body still in flight
    }
    let mut consumed = buf.split_to(total);
    let body = consumed.split_off(head_end + 4).freeze();
    Ok(Some(Request {
        method,
        target,
        headers,
        body,
    }))
}

fn find_subsequence(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

/// Response status codes the proxy emits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StatusCode {
    /// 200
    Ok,
    /// 400
    BadRequest,
    /// 404
    NotFound,
    /// 502
    BadGateway,
    /// 503
    ServiceUnavailable,
}

impl StatusCode {
    /// Numeric code.
    pub fn code(self) -> u16 {
        match self {
            StatusCode::Ok => 200,
            StatusCode::BadRequest => 400,
            StatusCode::NotFound => 404,
            StatusCode::BadGateway => 502,
            StatusCode::ServiceUnavailable => 503,
        }
    }

    /// Reason phrase.
    pub fn reason(self) -> &'static str {
        match self {
            StatusCode::Ok => "OK",
            StatusCode::BadRequest => "Bad Request",
            StatusCode::NotFound => "Not Found",
            StatusCode::BadGateway => "Bad Gateway",
            StatusCode::ServiceUnavailable => "Service Unavailable",
        }
    }
}

/// A response under construction.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status line code.
    pub status: StatusCode,
    /// Extra headers (names as given).
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Bytes,
}

impl Response {
    /// An empty response with `status`.
    pub fn new(status: StatusCode) -> Self {
        Self {
            status,
            headers: Vec::new(),
            body: Bytes::new(),
        }
    }

    /// Add a header.
    pub fn header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Set the body.
    pub fn body(mut self, body: impl Into<Bytes>) -> Self {
        self.body = body.into();
        self
    }

    /// Encode as HTTP/1.1 wire bytes (Content-Length always emitted).
    pub fn encode(&self) -> Bytes {
        let mut out = BytesMut::with_capacity(64 + self.body.len());
        out.put_slice(
            format!(
                "HTTP/1.1 {} {}\r\n",
                self.status.code(),
                self.status.reason()
            )
            .as_bytes(),
        );
        for (n, v) in &self.headers {
            out.put_slice(format!("{n}: {v}\r\n").as_bytes());
        }
        out.put_slice(format!("content-length: {}\r\n\r\n", self.body.len()).as_bytes());
        out.put_slice(&self.body);
        out.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(s: &[u8]) -> BytesMut {
        BytesMut::from(s)
    }

    #[test]
    fn parses_a_simple_get() {
        let mut b =
            buf(b"GET /index.html?x=1 HTTP/1.1\r\nHost: example.com:8080\r\nX-A: b\r\n\r\n");
        let req = parse_request(&mut b).unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/index.html?x=1");
        assert_eq!(req.path(), "/index.html");
        assert_eq!(req.host(), Some("example.com"));
        assert_eq!(req.header("x-a"), Some("b"));
        assert!(req.body.is_empty());
        assert!(b.is_empty(), "consumed fully");
    }

    #[test]
    fn incremental_parsing_waits_for_more_bytes() {
        let mut b = buf(b"GET / HTTP/1.1\r\nHost: a");
        assert_eq!(parse_request(&mut b).unwrap(), None);
        b.extend_from_slice(b"\r\n\r\n");
        assert!(parse_request(&mut b).unwrap().is_some());
    }

    #[test]
    fn content_length_body() {
        let mut b = buf(b"POST /u HTTP/1.1\r\nContent-Length: 5\r\n\r\nhel");
        assert_eq!(parse_request(&mut b).unwrap(), None); // body incomplete
        b.extend_from_slice(b"lo");
        let req = parse_request(&mut b).unwrap().unwrap();
        assert_eq!(&req.body[..], b"hello");
    }

    #[test]
    fn pipelined_requests_parse_sequentially() {
        let mut b = buf(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
        let a = parse_request(&mut b).unwrap().unwrap();
        let c = parse_request(&mut b).unwrap().unwrap();
        assert_eq!(a.target, "/a");
        assert_eq!(c.target, "/b");
    }

    #[test]
    fn rejects_malformed_inputs() {
        for bad in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET /\r\n\r\n",                         // missing version
            b"GET / HTTP/2.0\r\n\r\n",                // unsupported version
            b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n", // bad header
            b"GET / HTTP/1.1 extra\r\n\r\n",          // extra token
            b"GET / HTTP/1.1\r\nContent-Length: x\r\n\r\n",
        ] {
            let mut b = buf(bad);
            assert!(parse_request(&mut b).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn enforces_head_and_body_limits() {
        let mut huge_head = BytesMut::new();
        huge_head.extend_from_slice(b"GET / HTTP/1.1\r\n");
        huge_head.extend_from_slice(&vec![b'a'; MAX_HEAD_BYTES + 10]);
        assert_eq!(parse_request(&mut huge_head), Err(HttpError::HeadTooLarge));

        let mut big_body = buf(format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        )
        .as_bytes());
        assert_eq!(parse_request(&mut big_body), Err(HttpError::BodyTooLarge));
    }

    #[test]
    fn response_encoding_round_trips_shape() {
        let r = Response::new(StatusCode::Ok)
            .header("x-served-by", "pool-a")
            .body("hello");
        let wire = r.encode();
        let s = std::str::from_utf8(&wire).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.contains("x-served-by: pool-a\r\n"));
        assert!(s.contains("content-length: 5\r\n\r\nhello"));
    }

    /// Feed `wire` split at one boundary, parsing after each chunk, and
    /// return every request produced. Mirrors what a socket delivers: the
    /// parser must give identical results no matter where reads land.
    fn parse_split(wire: &[u8], split: usize) -> Vec<Request> {
        let mut b = BytesMut::new();
        let mut out = Vec::new();
        for chunk in [&wire[..split], &wire[split..]] {
            b.extend_from_slice(chunk);
            while let Some(req) = parse_request(&mut b).expect("valid wire bytes") {
                out.push(req);
            }
        }
        assert!(b.is_empty(), "residue after split at {split}");
        out
    }

    #[test]
    fn framing_survives_every_read_boundary() {
        // Two pipelined POSTs with bodies in one stream: any TCP segmentation
        // — including splits inside "\r\n\r\n" and mid-body — must produce
        // the same two requests.
        let wire = b"POST /a HTTP/1.1\r\nHost: h\r\nContent-Length: 7\r\n\r\nalpha!!\
POST /b HTTP/1.1\r\nContent-Length: 3\r\n\r\nxyz";
        for split in 0..=wire.len() {
            let reqs = parse_split(wire, split);
            assert_eq!(reqs.len(), 2, "split at {split}");
            assert_eq!(reqs[0].target, "/a");
            assert_eq!(&reqs[0].body[..], b"alpha!!");
            assert_eq!(reqs[1].target, "/b");
            assert_eq!(&reqs[1].body[..], b"xyz");
        }
    }

    #[test]
    fn framing_survives_byte_trickle() {
        // Slow-loris shape: one byte per read. The parser must keep asking
        // for more without consuming, then frame both requests exactly.
        let wire = b"GET /x?q=1 HTTP/1.1\r\nHost: t\r\n\r\nPOST /y HTTP/1.1\r\nContent-Length: 2\r\n\r\nok";
        let mut b = BytesMut::new();
        let mut out = Vec::new();
        for &byte in wire.iter() {
            b.extend_from_slice(&[byte]);
            while let Some(req) = parse_request(&mut b).expect("valid wire bytes") {
                out.push(req);
            }
        }
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].target, "/x?q=1");
        assert!(out[0].body.is_empty());
        assert_eq!(&out[1].body[..], b"ok");
        assert!(b.is_empty());
    }

    #[test]
    fn three_pipelined_requests_in_one_buffer_keep_order_and_bodies() {
        let mut b = buf(
            b"POST /1 HTTP/1.1\r\nContent-Length: 4\r\n\r\naaaa\
GET /2 HTTP/1.1\r\nHost: h\r\n\r\n\
POST /3 HTTP/1.1\r\nContent-Length: 1\r\n\r\nz",
        );
        let mut got = Vec::new();
        while let Some(req) = parse_request(&mut b).unwrap() {
            got.push(req);
        }
        assert_eq!(
            got.iter().map(|r| r.target.as_str()).collect::<Vec<_>>(),
            ["/1", "/2", "/3"]
        );
        assert_eq!(&got[0].body[..], b"aaaa");
        assert!(got[1].body.is_empty());
        assert_eq!(&got[2].body[..], b"z");
    }

    #[test]
    fn pipelined_garbage_after_a_valid_request_errors_without_losing_it() {
        // The valid request frames and is consumed; the trailing garbage
        // then errors on the next call (connection close, request served).
        let mut b = buf(b"GET /ok HTTP/1.1\r\n\r\nNOT HTTP AT ALL\r\n\r\n");
        let ok = parse_request(&mut b).unwrap().unwrap();
        assert_eq!(ok.target, "/ok");
        assert!(parse_request(&mut b).is_err());
    }

    #[test]
    fn oversized_head_boundary_is_exact() {
        // A head whose terminator lands exactly at MAX_HEAD_BYTES parses;
        // one byte more is rejected — and an unterminated head is rejected
        // as soon as the buffer exceeds the limit, not at some later read.
        let request_line = b"GET / HTTP/1.1\r\nx-pad: ";
        let pad = MAX_HEAD_BYTES - request_line.len(); // head_end == MAX_HEAD_BYTES
        let mut exact = BytesMut::new();
        exact.extend_from_slice(request_line);
        exact.extend_from_slice(&vec![b'p'; pad]);
        exact.extend_from_slice(b"\r\n\r\n");
        let req = parse_request(&mut exact).unwrap().unwrap();
        assert_eq!(req.header("x-pad").unwrap().len(), pad);

        let mut over = BytesMut::new();
        over.extend_from_slice(request_line);
        over.extend_from_slice(&vec![b'p'; pad + 1]);
        over.extend_from_slice(b"\r\n\r\n");
        assert_eq!(parse_request(&mut over), Err(HttpError::HeadTooLarge));

        let mut unterminated = BytesMut::new();
        unterminated.extend_from_slice(request_line);
        unterminated.extend_from_slice(&vec![b'p'; MAX_HEAD_BYTES]);
        assert_eq!(
            parse_request(&mut unterminated),
            Err(HttpError::HeadTooLarge)
        );
    }

    #[test]
    fn status_codes_cover_proxy_paths() {
        assert_eq!(StatusCode::BadRequest.code(), 400);
        assert_eq!(StatusCode::NotFound.code(), 404);
        assert_eq!(StatusCode::BadGateway.code(), 502);
        assert_eq!(
            StatusCode::ServiceUnavailable.reason(),
            "Service Unavailable"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The parser never panics on arbitrary bytes: it asks for more,
        /// errors, or parses.
        #[test]
        fn parser_is_total(data in prop::collection::vec(any::<u8>(), 0..2048)) {
            let mut b = BytesMut::from(&data[..]);
            let _ = parse_request(&mut b);
        }

        /// Valid requests round-trip through encode-of-equivalent-response
        /// and re-parse: parse(encode(req-ish)) keeps method/target/body.
        #[test]
        fn well_formed_requests_parse(
            method in "[A-Z]{3,7}",
            path in "/[a-z0-9/]{0,30}",
            body in prop::collection::vec(any::<u8>(), 0..256),
        ) {
            let mut wire = BytesMut::new();
            wire.extend_from_slice(
                format!("{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n", body.len())
                    .as_bytes(),
            );
            wire.extend_from_slice(&body);
            let req = parse_request(&mut wire).unwrap().unwrap();
            prop_assert_eq!(req.method, method);
            prop_assert_eq!(req.target, path);
            prop_assert_eq!(&req.body[..], &body[..]);
            prop_assert!(wire.is_empty());
        }
    }
}
