//! The backend data plane over real sockets: a client↔backend byte relay.
//!
//! Where [`crate::server`] terminates HTTP and answers from in-process
//! upstreams, this module *forwards*: each accepted client connection is
//! admitted against the current [`hermes_backend::BackendTable`] version,
//! connected to the selected backend (walking the admitted table's
//! deterministic candidate order on connect failure), and then pumped.
//!
//! How bytes move depends on [`RelayMode`]:
//!
//! * **`Reactor`** (default on Linux) — each worker owns an epoll set
//!   ([`crate::reactor`]): both relay legs register edge-triggered, the
//!   acceptor's hand-off rings an eventfd, and the worker pumps exactly
//!   the connections the kernel reported ready. An idle worker blocks in
//!   `epoll_wait`; an idle *connection* is never touched at all. With
//!   `splice: true` each direction stages bytes in a pooled kernel pipe
//!   and moves them socket→pipe→socket with splice(2) — zero userspace
//!   copies — demoting per direction to the scratch-buffer path when the
//!   kernel refuses (`EINVAL`/`ENOSYS`).
//! * **`SleepPoll`** — the portable baseline: poll every connection each
//!   iteration through the shared scratch buffer and sleep 200 µs when
//!   everything would block. Kept as the latency/CPU reference the
//!   `relay_throughput` bench gates the reactor against.
//!
//! Consistency: a connection resolves its backend *once*, at admission,
//! against the table version current at accept time. Later churn (drain,
//! flap, scale) publishes new versions for *new* connections; established
//! relays keep their TCP peer until either side closes. That is exactly
//! the frozen-snapshot contract the simnet churn suite proves at scale.
//!
//! Per-connection relay state handles the edges identically in every
//! mode: half-close (EOF on one side propagates `shutdown(Write)` to the
//! other once buffered bytes drain), strict backpressure (a side is read
//! only when its forwarding buffer — userspace or pipe — is empty),
//! connect failure (retry the next candidate in the admitted table), and
//! a hard per-connection deadline.

use crate::reactor::{self, PipePair, Reactor, Splice, Waker, WAKE_TOKEN};
use crate::server::{accept_loop, flow_hash, GroupSync, LbStats, ACCEPT_BURST};
use bytes::BytesMut;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use hermes_backend::{BackendId, BackendPool, TableCache};
use hermes_core::sched::SchedConfig;
use hermes_core::sdk::{SyncTarget, WorkerSession};
use hermes_core::wst::Wst;
use hermes_ebpf::{ExecTier, ReuseportGroup};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Backend connect timeout: long enough for loopback/LAN, short enough
/// that walking a few dead candidates stays well under a second.
const CONNECT_TIMEOUT: Duration = Duration::from_millis(250);

/// Hard ceiling on one relay's lifetime: a stuck peer must not pin worker
/// state forever (the relay analogue of the front end's slow-loris guard).
const RELAY_DEADLINE: Duration = Duration::from_secs(30);

/// Scratch buffer size for copy-path byte moves (shared per worker across
/// all of its relays).
const SCRATCH_BYTES: usize = 16 * 1024;

/// Bytes requested per splice fill — the staging pipe's capacity, so one
/// move can stage a whole pipe's worth without a userspace round trip.
const SPLICE_WINDOW: usize = reactor::PIPE_CAPACITY;

/// Cap on buffer-fulls moved per direction per pump, so one hot relay
/// cannot starve its siblings on the same worker.
const MOVES_PER_PUMP: usize = 4;

/// Reactor idle wait: long enough that an idle worker is asleep in the
/// kernel virtually all the time, short enough that shutdown and the
/// deadline sweep stay responsive. Readiness and hand-off wakeups arrive
/// immediately regardless.
const REACTOR_WAIT_MS: i32 = 25;

/// How often a reactor worker sweeps for expired deadlines. epoll never
/// fires for a silent peer, so expiry is clocked, not event-driven.
const SWEEP_INTERVAL: Duration = Duration::from_secs(1);

/// Pipes kept for reuse per worker (two per spliced connection); beyond
/// this they are closed instead, bounding idle fd consumption.
const PIPE_POOL_CAP: usize = 2 * ACCEPT_BURST;

/// How the relay workers learn about I/O readiness and move bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RelayMode {
    /// Portable baseline: poll every connection each iteration and sleep
    /// 200 µs when everything would block.
    SleepPoll,
    /// Per-worker epoll reactor (Linux): readiness-driven pumps, eventfd
    /// hand-off wakeups, zero idle cost. `splice` additionally moves
    /// bytes kernel-to-kernel through pooled pipes, demoting per
    /// direction to the copy path when the kernel refuses.
    Reactor {
        /// Enable the splice(2) zero-copy fast path.
        splice: bool,
    },
}

impl RelayMode {
    /// The best mode this host supports: reactor + splice on Linux, the
    /// portable sleep-poll loop elsewhere.
    pub fn auto() -> RelayMode {
        if reactor::supported() {
            RelayMode::Reactor { splice: true }
        } else {
            RelayMode::SleepPoll
        }
    }
}

/// Relay-specific counters (dispatch counters live in [`LbStats`]).
#[derive(Debug, Default)]
pub struct RelayStats {
    /// Relay connections fully torn down.
    pub relayed: AtomicU64,
    /// Bytes moved client → backend.
    pub bytes_up: AtomicU64,
    /// Bytes moved backend → client.
    pub bytes_down: AtomicU64,
    /// Connect attempts beyond the pinned candidate (failure → next).
    pub connect_retries: AtomicU64,
    /// Client connections dropped because no admitted candidate accepted.
    pub failed_connects: AtomicU64,
    /// Relay pump passes executed. Under the reactor this moves only when
    /// the kernel reports readiness — it stays flat across idle seconds,
    /// which the idle-CPU test asserts.
    pub pumps: AtomicU64,
    /// Bytes moved kernel-to-kernel by the splice fast path.
    pub splice_bytes: AtomicU64,
    /// Relay directions demoted from splice to the copy path.
    pub splice_fallbacks: AtomicU64,
    /// Relays whose backend id had no `per_backend` slot (late table
    /// versions can reference backends added after startup sizing).
    pub unindexed_backends: AtomicU64,
    /// Thread CPU nanoseconds burned by relay workers, sampled each loop
    /// pass via `CLOCK_THREAD_CPUTIME_ID`. Dividing bytes relayed by
    /// this yields bytes-per-CPU-second — the metric where the splice
    /// path's skipped userspace copies show up even on links (loopback)
    /// whose wall throughput is memcpy-bound at the endpoints.
    pub cpu_ns: AtomicU64,
    /// Relay connections established per backend (sized at startup).
    pub per_backend: Vec<AtomicU64>,
}

impl RelayStats {
    /// Count an established relay against its backend, clamping against
    /// table versions that grew past the startup-sized vector: a late
    /// backend id lands in `unindexed_backends` instead of panicking.
    fn note_backend(&self, b: BackendId) {
        match self.per_backend.get(b) {
            Some(slot) => {
                slot.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                self.unindexed_backends.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// A running TCP relay LB.
pub struct RelayLb {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    wakers: Vec<Waker>,
    stats: Arc<LbStats>,
    relay_stats: Arc<RelayStats>,
    pool: Arc<BackendPool>,
}

impl RelayLb {
    /// Bind `addr`, spawn `workers` relay workers over `backends`, and
    /// start accepting, in the best mode this host supports
    /// ([`RelayMode::auto`]). The pool starts with every backend
    /// `Healthy`; drive churn through [`RelayLb::pool`].
    pub fn start(
        addr: impl ToSocketAddrs,
        workers: usize,
        backends: Vec<SocketAddr>,
    ) -> std::io::Result<RelayLb> {
        RelayLb::start_with_mode(addr, workers, backends, RelayMode::auto())
    }

    /// [`RelayLb::start`] with an explicit [`RelayMode`] — the A/B hook
    /// the latency bench and the mode-matrix tests drive. A `Reactor`
    /// request degrades per worker to `SleepPoll` if epoll setup fails
    /// (and always on non-Linux hosts).
    pub fn start_with_mode(
        addr: impl ToSocketAddrs,
        workers: usize,
        backends: Vec<SocketAddr>,
        mode: RelayMode,
    ) -> std::io::Result<RelayLb> {
        assert!((1..=64).contains(&workers), "1..=64 workers");
        assert!(!backends.is_empty(), "relay needs at least one backend");
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(LbStats {
            accepted: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            ..LbStats::default()
        });
        let relay_stats = Arc::new(RelayStats {
            per_backend: (0..backends.len()).map(|_| AtomicU64::new(0)).collect(),
            ..RelayStats::default()
        });
        let pool = Arc::new(BackendPool::new(backends.len()));
        let backends = Arc::new(backends);
        let wst = Arc::new(Wst::new(workers));
        let group = Arc::new(ReuseportGroup::new(workers));
        // Same admission bar as the HTTP front end: statically verified
        // and translation-validated dispatch only.
        assert_eq!(
            group.tier(),
            ExecTier::native_ceiling(),
            "dispatch program failed static verification:\n{}",
            group.analysis().render(group.program())
        );
        assert!(
            group.validation().blocks_proven() > 0,
            "compiled dispatch admitted without a translation proof"
        );

        let mut senders: Vec<Sender<TcpStream>> = Vec::with_capacity(workers);
        let mut accept_wakers: Vec<Option<Waker>> = Vec::with_capacity(workers);
        let mut wakers: Vec<Waker> = Vec::new();
        let mut handles = Vec::with_capacity(workers);
        for id in 0..workers {
            let (tx, rx) = bounded::<TcpStream>(1024);
            senders.push(tx);
            let session = WorkerSession::new(
                Arc::clone(&wst),
                id,
                SchedConfig::default(),
                Arc::new(GroupSync(Arc::clone(&group))),
            );
            let stats = Arc::clone(&stats);
            let relay_stats = Arc::clone(&relay_stats);
            let shutdown = Arc::clone(&shutdown);
            let pool = Arc::clone(&pool);
            let backends = Arc::clone(&backends);
            // Build the reactor on this thread so the acceptor has the
            // waker before the worker starts; hand the reactor across.
            let engine = match mode {
                RelayMode::Reactor { splice } => Reactor::new().ok().map(|r| (r, splice)),
                RelayMode::SleepPoll => None,
            };
            let waker = engine.as_ref().map(|(r, _)| r.waker());
            accept_wakers.push(waker.clone());
            wakers.extend(waker);
            handles.push(std::thread::spawn(move || match engine {
                Some((reactor, splice)) => relay_worker_reactor_loop(
                    id,
                    rx,
                    reactor,
                    splice,
                    session,
                    pool,
                    backends,
                    stats,
                    relay_stats,
                    shutdown,
                ),
                None => relay_worker_loop(
                    id,
                    rx,
                    session,
                    pool,
                    backends,
                    stats,
                    relay_stats,
                    shutdown,
                ),
            }));
        }

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || {
                accept_loop(listener, senders, accept_wakers, group, stats, shutdown);
            })
        };

        Ok(RelayLb {
            local_addr,
            shutdown,
            acceptor: Some(acceptor),
            workers: handles,
            wakers,
            stats,
            relay_stats,
            pool,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Dispatch counters (accepts, directed/fallback).
    pub fn stats(&self) -> &Arc<LbStats> {
        &self.stats
    }

    /// Relay counters (bytes, retries, per-backend spread).
    pub fn relay_stats(&self) -> &Arc<RelayStats> {
        &self.relay_stats
    }

    /// The versioned backend pool: drive health transitions (drain, down,
    /// recover) here; each publishes a new frozen table for new admissions.
    pub fn pool(&self) -> &Arc<BackendPool> {
        &self.pool
    }

    /// Stop accepting, drain relays, join threads.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Reactor workers may be asleep in epoll_wait: ring them out.
        for w in &self.wakers {
            w.wake();
        }
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for RelayLb {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for w in &self.wakers {
            w.wake();
        }
    }
}

/// Outcome of one pump pass over a relay.
enum Pump {
    /// Still alive.
    Progress {
        /// Bytes delivered this pass; `0` means both sides would block.
        moved: u64,
        /// The pass stopped at the fairness cap with work left: under
        /// edge-triggered epoll no new event will announce it, so the
        /// worker must re-pump without waiting.
        more: bool,
    },
    /// Both directions saw EOF and every buffered byte was delivered.
    Done,
    /// A socket error (reset, deadline): tear down.
    Dead,
}

/// One relay direction's in-flight byte store.
enum DirBuf {
    /// Userspace staging through the worker's shared scratch buffer.
    Copy(BytesMut),
    /// Kernel staging: bytes move socket→pipe→socket via splice(2) and
    /// never surface in userspace. `buffered` tracks pipe occupancy.
    Splice {
        /// The pooled pipe pair staging this direction.
        pipe: PipePair,
        /// Bytes currently sitting in the pipe.
        buffered: usize,
    },
}

/// Accounting for one direction's pump pass.
#[derive(Default)]
struct DirPass {
    /// Bytes delivered to the destination socket.
    moved: u64,
    /// Bytes of `moved` that travelled the zero-copy splice path.
    spliced: u64,
    /// Stopped at the fairness cap, not on would-block (see [`Pump`]).
    more: bool,
    /// This pass demoted the direction from splice to the copy path.
    demoted: bool,
}

impl DirBuf {
    /// Build a direction store: a pooled (or fresh) pipe when splicing,
    /// the userspace buffer otherwise — or when no pipe can be opened
    /// (fd exhaustion), which counts as a splice fallback.
    fn new(splice: bool, pipes: &mut Vec<PipePair>, fallbacks: &mut u64) -> DirBuf {
        if splice {
            match pipes.pop().map(Ok).unwrap_or_else(PipePair::new) {
                Ok(pipe) => return DirBuf::Splice { pipe, buffered: 0 },
                Err(_) => *fallbacks += 1,
            }
        }
        DirBuf::Copy(BytesMut::with_capacity(SCRATCH_BYTES))
    }

    /// No byte is waiting to be delivered.
    fn is_drained(&self) -> bool {
        match self {
            DirBuf::Copy(buf) => buf.is_empty(),
            DirBuf::Splice { buffered, .. } => *buffered == 0,
        }
    }

    /// Pump `src` → `dst` through this store: flush what is buffered,
    /// read more only when the buffer is empty (strict backpressure —
    /// the pipe's 64 KiB capacity is the splice path's bound), capped at
    /// [`MOVES_PER_PUMP`]. Propagates half-close once `src`'s EOF is
    /// fully flushed. A kernel splice refusal demotes to the copy path
    /// (recovering pipe bytes) and retries within the same call.
    fn pump(
        &mut self,
        src: &mut TcpStream,
        dst: &mut TcpStream,
        src_eof: &mut bool,
        dst_shut: &mut bool,
        scratch: &mut [u8],
    ) -> std::io::Result<DirPass> {
        let mut pass = DirPass::default();
        loop {
            match self {
                DirBuf::Copy(buf) => {
                    let (moved, more) = pump_copy(src, dst, buf, src_eof, scratch)?;
                    pass.moved += moved;
                    pass.more = more;
                }
                DirBuf::Splice { pipe, buffered } => {
                    match pump_splice(src, dst, pipe, buffered, src_eof)? {
                        Some((moved, more)) => {
                            pass.moved += moved;
                            pass.spliced += moved;
                            pass.more = more;
                        }
                        None => {
                            self.demote(scratch)?;
                            pass.demoted = true;
                            continue; // finish the pass on the copy path
                        }
                    }
                }
            }
            break;
        }
        if *src_eof && self.is_drained() && !*dst_shut {
            // Half-close: the reader saw EOF and everything it buffered
            // has been delivered — tell the other side no more bytes are
            // coming, while its responses keep flowing the opposite way.
            let _ = dst.shutdown(Shutdown::Write);
            *dst_shut = true;
        }
        Ok(pass)
    }

    /// Demote to the copy path, recovering any bytes already staged in
    /// the pipe — they must still reach the peer in order; dropping them
    /// would corrupt the stream.
    fn demote(&mut self, scratch: &mut [u8]) -> std::io::Result<()> {
        if let DirBuf::Splice { pipe, buffered } = self {
            let mut buf = BytesMut::with_capacity(SCRATCH_BYTES);
            while *buffered > 0 {
                let n = pipe.drain_into(scratch)?;
                if n == 0 {
                    break;
                }
                buf.extend_from_slice(&scratch[..n]);
                *buffered -= n.min(*buffered);
            }
            *self = DirBuf::Copy(buf);
        }
        Ok(())
    }

    /// Hand the pipe back for reuse. Only a fully drained pipe may be
    /// recycled — stranded bytes would corrupt the next connection — and
    /// the pool is capped to bound idle fds.
    fn reclaim(self, pipes: &mut Vec<PipePair>) {
        if let DirBuf::Splice { pipe, buffered: 0 } = self {
            if pipes.len() < PIPE_POOL_CAP {
                pipes.push(pipe);
            }
        }
    }
}

/// Copy-path pump: flush buffered bytes, refill through `scratch` only
/// when empty. Returns `(bytes_delivered, more)` where `more` means the
/// pass ended at the move cap with deliverable work remaining.
fn pump_copy(
    src: &mut TcpStream,
    dst: &mut TcpStream,
    buf: &mut BytesMut,
    src_eof: &mut bool,
    scratch: &mut [u8],
) -> std::io::Result<(u64, bool)> {
    use std::io::ErrorKind;
    let mut moved = 0u64;
    let mut dst_blocked = false;
    let mut src_blocked = false;
    'moves: for _ in 0..MOVES_PER_PUMP {
        while !buf.is_empty() {
            match dst.write(&buf[..]) {
                Ok(0) => return Err(ErrorKind::WriteZero.into()),
                Ok(n) => {
                    let _ = buf.split_to(n);
                    moved += n as u64;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    dst_blocked = true;
                    break 'moves;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if *src_eof {
            break;
        }
        match src.read(scratch) {
            Ok(0) => {
                *src_eof = true;
                break;
            }
            Ok(n) => buf.extend_from_slice(&scratch[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                src_blocked = true;
                break;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    // More deliverable work remains iff the destination still accepts
    // bytes and either the buffer holds some or the source may yield more.
    let more = !dst_blocked && (!buf.is_empty() || (!*src_eof && !src_blocked));
    Ok((moved, more))
}

/// Splice-path pump: same flush-then-refill shape as [`pump_copy`], but
/// both moves are kernel-to-kernel through the pipe. `Ok(None)` means the
/// kernel refused (`EINVAL`/`ENOSYS`): the caller must demote this
/// direction to the copy path.
fn pump_splice(
    src: &mut TcpStream,
    dst: &mut TcpStream,
    pipe: &PipePair,
    buffered: &mut usize,
    src_eof: &mut bool,
) -> std::io::Result<Option<(u64, bool)>> {
    let mut moved = 0u64;
    let mut dst_blocked = false;
    let mut src_blocked = false;
    'moves: for _ in 0..MOVES_PER_PUMP {
        while *buffered > 0 {
            match reactor::splice_from_pipe(pipe, dst.as_raw_fd(), *buffered)? {
                Splice::Moved(n) => {
                    *buffered -= n.min(*buffered);
                    moved += n as u64;
                }
                // A zero-length pipe read with buffered > 0 cannot
                // happen; fold it into would-block rather than trust it.
                Splice::WouldBlock | Splice::Eof => {
                    dst_blocked = true;
                    break 'moves;
                }
                Splice::Unsupported => return Ok(None),
            }
        }
        if *src_eof {
            break;
        }
        match reactor::splice_to_pipe(src.as_raw_fd(), pipe, SPLICE_WINDOW)? {
            Splice::Moved(n) => *buffered += n,
            Splice::WouldBlock => {
                src_blocked = true;
                break;
            }
            Splice::Eof => {
                *src_eof = true;
                break;
            }
            Splice::Unsupported => return Ok(None),
        }
    }
    let more = !dst_blocked && (*buffered > 0 || (!*src_eof && !src_blocked));
    Ok(Some((moved, more)))
}

/// One established relay: client socket, backend socket, and the
/// in-flight byte store for each direction.
struct RelayConn {
    client: TcpStream,
    backend: TcpStream,
    backend_id: BackendId,
    /// Table version this connection was admitted under (observability:
    /// proves which snapshot the routing decision came from).
    admitted_version: u64,
    /// Client → backend byte store.
    up: DirBuf,
    /// Backend → client byte store.
    down: DirBuf,
    client_eof: bool,
    backend_eof: bool,
    backend_shut: bool,
    client_shut: bool,
    bytes_up: u64,
    bytes_down: u64,
    deadline: Instant,
}

impl RelayConn {
    fn new(
        client: TcpStream,
        backend: TcpStream,
        backend_id: BackendId,
        version: u64,
        splice: bool,
        pipes: &mut Vec<PipePair>,
        rstats: &RelayStats,
    ) -> Self {
        let mut fallbacks = 0u64;
        let up = DirBuf::new(splice, pipes, &mut fallbacks);
        let down = DirBuf::new(splice, pipes, &mut fallbacks);
        if fallbacks > 0 {
            rstats.splice_fallbacks.fetch_add(fallbacks, Ordering::Relaxed);
            hermes_trace::trace_count!(hermes_trace::CounterId::SpliceFallbacks, fallbacks);
        }
        Self {
            client,
            backend,
            backend_id,
            admitted_version: version,
            up,
            down,
            client_eof: false,
            backend_eof: false,
            backend_shut: false,
            client_shut: false,
            bytes_up: 0,
            bytes_down: 0,
            deadline: Instant::now() + RELAY_DEADLINE,
        }
    }

    /// Move bytes in both directions until the sockets would block (or
    /// the per-pump cap). Returns the relay's life status.
    fn pump(&mut self, scratch: &mut [u8], rstats: &RelayStats) -> Pump {
        if Instant::now() >= self.deadline {
            return Pump::Dead;
        }
        rstats.pumps.fetch_add(1, Ordering::Relaxed);
        let up = self.up.pump(
            &mut self.client,
            &mut self.backend,
            &mut self.client_eof,
            &mut self.backend_shut,
            scratch,
        );
        let down = self.down.pump(
            &mut self.backend,
            &mut self.client,
            &mut self.backend_eof,
            &mut self.client_shut,
            scratch,
        );
        match (up, down) {
            (Ok(u), Ok(d)) => {
                self.bytes_up += u.moved;
                self.bytes_down += d.moved;
                let spliced = u.spliced + d.spliced;
                if spliced > 0 {
                    rstats.splice_bytes.fetch_add(spliced, Ordering::Relaxed);
                    hermes_trace::trace_count!(hermes_trace::CounterId::SpliceBytes, spliced);
                }
                let demoted = u.demoted as u64 + d.demoted as u64;
                if demoted > 0 {
                    rstats.splice_fallbacks.fetch_add(demoted, Ordering::Relaxed);
                    hermes_trace::trace_count!(hermes_trace::CounterId::SpliceFallbacks, demoted);
                }
                let drained = self.up.is_drained() && self.down.is_drained();
                if self.client_eof && self.backend_eof && drained {
                    Pump::Done
                } else {
                    Pump::Progress {
                        moved: u.moved + d.moved,
                        more: u.more || d.more,
                    }
                }
            }
            _ => Pump::Dead,
        }
    }
}

/// Teardown bookkeeping shared by both worker loops: fold the relay's
/// byte counts into the shared stats, notify the session/trace, and
/// recycle drained pipes. Dropping the sockets closes both legs.
fn finish_conn<T: SyncTarget>(
    conn: RelayConn,
    rstats: &RelayStats,
    session: &mut WorkerSession<T>,
    lane: u32,
    now: u64,
    pipes: &mut Vec<PipePair>,
) {
    rstats.relayed.fetch_add(1, Ordering::Relaxed);
    rstats.bytes_up.fetch_add(conn.bytes_up, Ordering::Relaxed);
    rstats.bytes_down.fetch_add(conn.bytes_down, Ordering::Relaxed);
    session.conn_closed();
    hermes_trace::trace_event!(
        now,
        hermes_trace::EventKind::ConnClose,
        lane,
        conn.backend_id,
        conn.admitted_version
    );
    let RelayConn { up, down, .. } = conn;
    up.reclaim(pipes);
    down.reclaim(pipes);
}

/// Admit a freshly dispatched client against the current table version and
/// connect it to a backend, walking the admitted candidate order on
/// connect failure. `None` drops the client (no candidate reachable).
fn open_relay(
    client: TcpStream,
    pool: &BackendPool,
    cache: &mut TableCache,
    backends: &[SocketAddr],
    rstats: &RelayStats,
    splice: bool,
    pipes: &mut Vec<PipePair>,
) -> Option<RelayConn> {
    let hash = match (client.peer_addr(), client.local_addr()) {
        (Ok(peer), Ok(local)) => flow_hash(&peer, &local),
        _ => return None, // peer vanished between accept and hand-off
    };
    let table = pool.cached(cache);
    let Some(adm) = table.admit(hash) else {
        rstats.failed_connects.fetch_add(1, Ordering::Relaxed);
        return None; // nothing admits new connections right now
    };
    let mut attempt = 0;
    while let Some(b) = adm.candidate(attempt) {
        if attempt > 0 {
            rstats.connect_retries.fetch_add(1, Ordering::Relaxed);
            hermes_trace::trace_count!(hermes_trace::CounterId::BackendRetries);
        }
        // A candidate beyond the startup address list (a late table
        // version referencing backends this process never learned
        // addresses for) is skipped like a failed connect.
        let connected = backends
            .get(b)
            .map(|addr| TcpStream::connect_timeout(addr, CONNECT_TIMEOUT));
        match connected {
            Some(Ok(backend)) => {
                let _ = client.set_nonblocking(true);
                let _ = client.set_nodelay(true);
                let _ = backend.set_nonblocking(true);
                let _ = backend.set_nodelay(true);
                rstats.note_backend(b);
                return Some(RelayConn::new(
                    client,
                    backend,
                    b,
                    adm.version(),
                    splice,
                    pipes,
                    rstats,
                ));
            }
            _ => attempt += 1,
        }
    }
    rstats.failed_connects.fetch_add(1, Ordering::Relaxed);
    None
}

/// The reactor relay worker: the Fig. 9 loop shape where "wait for
/// events" is a real `epoll_wait` — readiness edges and the acceptor's
/// eventfd ring are the only things that move it. Idle connections cost
/// nothing; an idle worker sleeps in the kernel.
#[allow(clippy::too_many_arguments)]
fn relay_worker_reactor_loop<T: SyncTarget>(
    id: usize,
    rx: Receiver<TcpStream>,
    mut reactor: Reactor,
    splice: bool,
    mut session: WorkerSession<T>,
    pool: Arc<BackendPool>,
    backends: Arc<Vec<SocketAddr>>,
    stats: Arc<LbStats>,
    rstats: Arc<RelayStats>,
    shutdown: Arc<AtomicBool>,
) {
    let epoch = Instant::now();
    let now_ns = move || epoch.elapsed().as_nanos() as u64;
    let lane = id as u32;
    let mut cache = TableCache::new();
    // Slot-addressed connection table: fd tokens are `slot*2` (client
    // leg) and `slot*2 + 1` (backend leg), so a readiness event maps
    // straight back to its relay. Freed slots are reused; a stale event
    // for a torn-down slot finds `None` (or a new tenant, which tolerates
    // the spurious pump) and is dropped.
    let mut slots: Vec<Option<RelayConn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut live = 0usize;
    let mut pipes: Vec<PipePair> = Vec::new();
    let mut scratch = vec![0u8; SCRATCH_BYTES];
    let mut events: Vec<reactor::Event> = Vec::new();
    // Slots that stopped at the fairness cap: under edge-triggered epoll
    // their remaining work will never re-announce itself, so they carry
    // over to the next iteration (which polls instead of blocking).
    let mut ready: Vec<usize> = Vec::new();
    let mut due: Vec<usize> = Vec::new();
    let mut last_sweep = Instant::now();
    let mut disconnected = false;
    let mut last_cpu = reactor::thread_cpu_ns();
    loop {
        session.loop_top(now_ns());
        let cpu = reactor::thread_cpu_ns();
        rstats
            .cpu_ns
            .fetch_add(cpu.saturating_sub(last_cpu), Ordering::Relaxed);
        last_cpu = cpu;
        let timeout = if !ready.is_empty() || !rx.is_empty() {
            0
        } else {
            REACTOR_WAIT_MS
        };
        let fetched_events = reactor.wait(&mut events, timeout).unwrap_or(0);
        if fetched_events > 0 {
            hermes_trace::trace_count!(hermes_trace::CounterId::ReactorWakeups);
        }
        if events.iter().any(|e| e.token == WAKE_TOKEN) {
            reactor.drain_wake();
        }

        // Admit a burst of newly dispatched connections (the eventfd ring
        // said the channel has some; cap mirrors the accept burst).
        let mut fetched = 0usize;
        while fetched < ACCEPT_BURST {
            match rx.try_recv() {
                Ok(stream) => {
                    fetched += 1;
                    stats.accepted[id].fetch_add(1, Ordering::Relaxed);
                    let Some(conn) = open_relay(
                        stream, &pool, &mut cache, &backends, &rstats, splice, &mut pipes,
                    ) else {
                        continue;
                    };
                    session.conn_opened();
                    hermes_trace::trace_event!(
                        now_ns(),
                        hermes_trace::EventKind::ConnOpen,
                        lane,
                        conn.backend_id,
                        conn.admitted_version
                    );
                    let slot = free.pop().unwrap_or_else(|| {
                        slots.push(None);
                        slots.len() - 1
                    });
                    let cfd = conn.client.as_raw_fd();
                    let bfd = conn.backend.as_raw_fd();
                    slots[slot] = Some(conn);
                    live += 1;
                    let token = (slot as u64) * 2;
                    if reactor.register(cfd, token).is_ok()
                        && reactor.register(bfd, token + 1).is_ok()
                    {
                        // Edge-triggered contract: readiness that predates
                        // registration never replays, so pump once now.
                        ready.push(slot);
                    } else {
                        let _ = reactor.deregister(cfd);
                        let c = slots[slot].take().expect("just inserted");
                        finish_conn(c, &rstats, &mut session, lane, now_ns(), &mut pipes);
                        live -= 1;
                        free.push(slot);
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        session.events_fetched(fetched);
        for _ in 0..fetched {
            session.event_handled();
        }

        // Readiness → owed pumps: decode fd events to slots and merge the
        // carried-over fairness-cap list (deduplicated — a relay whose
        // both legs fired still pumps once, and one pump serves both
        // directions anyway).
        due.clear();
        due.extend(
            events
                .iter()
                .filter(|e| e.token != WAKE_TOKEN)
                .map(|e| (e.token / 2) as usize),
        );
        due.append(&mut ready);
        due.sort_unstable();
        due.dedup();

        let mut moved = 0u64;
        let mut pumped = 0usize;
        for i in 0..due.len() {
            let slot = due[i];
            let Some(conn) = slots.get_mut(slot).and_then(|s| s.as_mut()) else {
                continue; // stale event for a torn-down slot
            };
            pumped += 1;
            match conn.pump(&mut scratch, &rstats) {
                Pump::Progress { moved: n, more } => {
                    moved += n;
                    if more {
                        ready.push(slot);
                    }
                }
                Pump::Done | Pump::Dead => {
                    let c = slots[slot].take().expect("pumped a live slot");
                    let _ = reactor.deregister(c.client.as_raw_fd());
                    let _ = reactor.deregister(c.backend.as_raw_fd());
                    finish_conn(c, &rstats, &mut session, lane, now_ns(), &mut pipes);
                    live -= 1;
                    free.push(slot);
                }
            }
        }
        if fetched_events > 0 {
            hermes_trace::trace_event!(
                now_ns(),
                hermes_trace::EventKind::RelayWakeup,
                lane,
                fetched_events,
                pumped
            );
        }
        if moved > 0 || fetched > 0 {
            hermes_trace::trace_count!(hermes_trace::CounterId::RelayBursts);
            hermes_trace::trace_count!(hermes_trace::CounterId::RelayBytes, moved);
        }

        // Deadline sweep: epoll never fires for a silent peer, so expiry
        // is reaped on a coarse clock. Comparisons only — no pumps — so
        // idle connections stay untouched (the idle-CPU property).
        if live > 0 && last_sweep.elapsed() >= SWEEP_INTERVAL {
            last_sweep = Instant::now();
            let now = Instant::now();
            for slot in 0..slots.len() {
                let expired = matches!(&slots[slot], Some(c) if now >= c.deadline);
                if expired {
                    let c = slots[slot].take().expect("matched Some");
                    let _ = reactor.deregister(c.client.as_raw_fd());
                    let _ = reactor.deregister(c.backend.as_raw_fd());
                    finish_conn(c, &rstats, &mut session, lane, now_ns(), &mut pipes);
                    live -= 1;
                    free.push(slot);
                }
            }
        }

        let decision = session.schedule_only(now_ns());
        session.sync_only(decision.bitmap);
        if (disconnected || shutdown.load(Ordering::SeqCst)) && rx.is_empty() && live == 0 {
            return;
        }
    }
}

/// The sleep-poll relay worker: the pre-reactor baseline. Polls every
/// live relay each iteration and sleeps 200 µs when everything would
/// block — kept as the portable fallback and as the A/B reference the
/// latency bench gates the reactor against.
#[allow(clippy::too_many_arguments)]
fn relay_worker_loop<T: SyncTarget>(
    id: usize,
    rx: Receiver<TcpStream>,
    mut session: WorkerSession<T>,
    pool: Arc<BackendPool>,
    backends: Arc<Vec<SocketAddr>>,
    stats: Arc<LbStats>,
    rstats: Arc<RelayStats>,
    shutdown: Arc<AtomicBool>,
) {
    let epoch = Instant::now();
    let now_ns = move || epoch.elapsed().as_nanos() as u64;
    let lane = id as u32;
    let mut cache = TableCache::new();
    let mut conns: Vec<RelayConn> = Vec::new();
    let mut pipes: Vec<PipePair> = Vec::new();
    let mut scratch = vec![0u8; SCRATCH_BYTES];
    let mut last_cpu = reactor::thread_cpu_ns();
    loop {
        session.loop_top(now_ns());
        let cpu = reactor::thread_cpu_ns();
        rstats
            .cpu_ns
            .fetch_add(cpu.saturating_sub(last_cpu), Ordering::Relaxed);
        last_cpu = cpu;
        // Fetch a burst of newly dispatched connections. Block (the 5 ms
        // epoll_wait stand-in) only when there is nothing to pump.
        let mut fetched = 0usize;
        if conns.is_empty() {
            match rx.recv_timeout(Duration::from_millis(5)) {
                Ok(stream) => {
                    admit(stream, &mut conns, id, lane, &now_ns, &mut session, &pool, &mut cache, &backends, &stats, &rstats, &mut pipes);
                    fetched += 1;
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
        while fetched < ACCEPT_BURST {
            match rx.try_recv() {
                Ok(stream) => {
                    admit(stream, &mut conns, id, lane, &now_ns, &mut session, &pool, &mut cache, &backends, &stats, &rstats, &mut pipes);
                    fetched += 1;
                }
                Err(_) => break,
            }
        }
        session.events_fetched(fetched);
        for _ in 0..fetched {
            session.event_handled();
        }

        // Pump every live relay once through the shared scratch buffer.
        let mut moved = 0u64;
        let mut i = 0;
        while i < conns.len() {
            match conns[i].pump(&mut scratch, &rstats) {
                Pump::Progress { moved: n, .. } => {
                    moved += n;
                    i += 1;
                }
                Pump::Done | Pump::Dead => {
                    // Dropping the RelayConn closes both sockets; Dead
                    // relays leave only the counters as residue.
                    let c = conns.swap_remove(i);
                    finish_conn(c, &rstats, &mut session, lane, now_ns(), &mut pipes);
                }
            }
        }
        if moved > 0 || fetched > 0 {
            hermes_trace::trace_count!(hermes_trace::CounterId::RelayBursts);
            hermes_trace::trace_count!(hermes_trace::CounterId::RelayBytes, moved);
        } else if !conns.is_empty() {
            // Everything would block: yield briefly instead of spinning.
            std::thread::sleep(Duration::from_micros(200));
        }
        let decision = session.schedule_only(now_ns());
        session.sync_only(decision.bitmap);
        if shutdown.load(Ordering::SeqCst) && rx.is_empty() && conns.is_empty() {
            return;
        }
    }
}

/// Accept-side bookkeeping for one dispatched client: WST + stats +
/// trace, then admission and backend connect. (Sleep-poll loop only; the
/// reactor loop inlines this to also register fds.)
#[allow(clippy::too_many_arguments)]
fn admit<T: SyncTarget>(
    stream: TcpStream,
    conns: &mut Vec<RelayConn>,
    id: usize,
    lane: u32,
    now_ns: &impl Fn() -> u64,
    session: &mut WorkerSession<T>,
    pool: &BackendPool,
    cache: &mut TableCache,
    backends: &[SocketAddr],
    stats: &LbStats,
    rstats: &RelayStats,
    pipes: &mut Vec<PipePair>,
) {
    stats.accepted[id].fetch_add(1, Ordering::Relaxed);
    // The sleep-poll baseline never splices: it is the copy-path
    // reference the bench compares the reactor modes against.
    if let Some(conn) = open_relay(stream, pool, cache, backends, rstats, false, pipes) {
        session.conn_opened();
        hermes_trace::trace_event!(
            now_ns(),
            hermes_trace::EventKind::ConnOpen,
            lane,
            conn.backend_id,
            conn.admitted_version
        );
        conns.push(conn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_backend::HealthState;
    use std::io::{BufRead, BufReader};
    use std::sync::Mutex;

    /// Every mode this host can run: the portable sleep-poll baseline
    /// everywhere, plus both reactor variants on Linux.
    fn modes_under_test() -> Vec<RelayMode> {
        let mut modes = vec![RelayMode::SleepPoll];
        if reactor::supported() {
            modes.push(RelayMode::Reactor { splice: false });
            modes.push(RelayMode::Reactor { splice: true });
        }
        modes
    }

    /// A line-greeting echo backend: sends `hello-<id>\n` on connect, then
    /// echoes every byte until client EOF, then closes.
    fn spawn_echo_backend(id: usize) -> (SocketAddr, Arc<AtomicBool>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind backend");
        let addr = listener.local_addr().unwrap();
        listener.set_nonblocking(true).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop2.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((mut s, _)) => {
                        std::thread::spawn(move || {
                            let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
                            let _ = s.set_nodelay(true);
                            if s.write_all(format!("hello-{id}\n").as_bytes()).is_err() {
                                return;
                            }
                            let mut chunk = [0u8; 1024];
                            loop {
                                match s.read(&mut chunk) {
                                    Ok(0) | Err(_) => break,
                                    Ok(n) => {
                                        if s.write_all(&chunk[..n]).is_err() {
                                            break;
                                        }
                                    }
                                }
                            }
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => break,
                }
            }
        });
        (addr, stop)
    }

    /// A backend that half-closes *first*: sends `bye\n`, shuts down its
    /// write side immediately, then keeps reading and recording whatever
    /// the client sends until EOF.
    fn spawn_closer_backend() -> (SocketAddr, Arc<AtomicBool>, Arc<Mutex<Vec<u8>>>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind backend");
        let addr = listener.local_addr().unwrap();
        listener.set_nonblocking(true).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let received = Arc::new(Mutex::new(Vec::new()));
        let stop2 = Arc::clone(&stop);
        let received2 = Arc::clone(&received);
        std::thread::spawn(move || {
            while !stop2.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((mut s, _)) => {
                        let received = Arc::clone(&received2);
                        std::thread::spawn(move || {
                            let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
                            let _ = s.set_nodelay(true);
                            if s.write_all(b"bye\n").is_err() {
                                return;
                            }
                            let _ = s.shutdown(Shutdown::Write);
                            let mut chunk = [0u8; 1024];
                            loop {
                                match s.read(&mut chunk) {
                                    Ok(0) | Err(_) => break,
                                    Ok(n) => received.lock().unwrap().extend_from_slice(&chunk[..n]),
                                }
                            }
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => break,
                }
            }
        });
        (addr, stop, received)
    }

    /// Connect through the relay, read the greeting, exchange one echo
    /// round-trip, half-close, and drain to EOF. Returns the backend id
    /// that greeted.
    fn relay_round_trip(addr: SocketAddr, payload: &str) -> usize {
        let mut s = TcpStream::connect(addr).expect("connect relay");
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.set_nodelay(true).unwrap();
        let mut r = BufReader::new(s.try_clone().unwrap());
        let mut greeting = String::new();
        r.read_line(&mut greeting).expect("greeting");
        let backend: usize = greeting
            .trim()
            .strip_prefix("hello-")
            .unwrap_or_else(|| panic!("bad greeting {greeting:?}"))
            .parse()
            .unwrap();
        write!(s, "{payload}\n").unwrap();
        let mut echoed = String::new();
        r.read_line(&mut echoed).expect("echo");
        assert_eq!(echoed.trim(), payload);
        s.shutdown(Shutdown::Write).unwrap();
        let mut rest = String::new();
        let _ = r.read_to_string(&mut rest);
        assert!(rest.is_empty(), "unexpected trailing bytes {rest:?}");
        backend
    }

    /// Wait (bounded) until the closer backend has recorded `want` bytes.
    fn await_received(received: &Arc<Mutex<Vec<u8>>>, want: usize) -> Vec<u8> {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            {
                let got = received.lock().unwrap();
                if got.len() >= want {
                    return got.clone();
                }
            }
            assert!(
                Instant::now() < deadline,
                "backend never received the client's post-EOF bytes"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn relays_end_to_end_and_spreads_across_backends() {
        let backends: Vec<_> = (0..4).map(spawn_echo_backend).collect();
        let addrs: Vec<SocketAddr> = backends.iter().map(|(a, _)| *a).collect();
        let lb = RelayLb::start("127.0.0.1:0", 4, addrs).expect("bind");
        let addr = lb.local_addr();
        std::thread::sleep(Duration::from_millis(15)); // first bitmaps
        let mut used = std::collections::HashSet::new();
        for i in 0..24 {
            used.insert(relay_round_trip(addr, &format!("ping-{i}")));
        }
        let rstats = Arc::clone(lb.relay_stats());
        lb.shutdown();
        assert!(used.len() >= 2, "all relays landed on one backend: {used:?}");
        let landed: u64 = rstats
            .per_backend
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .sum();
        assert_eq!(landed, 24);
        assert_eq!(rstats.relayed.load(Ordering::Relaxed), 24);
        assert_eq!(rstats.failed_connects.load(Ordering::Relaxed), 0);
        // Greeting + echo flowed down; payload flowed up.
        assert!(rstats.bytes_down.load(Ordering::Relaxed) > rstats.bytes_up.load(Ordering::Relaxed));
        if reactor::supported() {
            // The auto mode splices on Linux; the default path must have
            // actually taken it.
            assert!(
                rstats.splice_bytes.load(Ordering::Relaxed) > 0,
                "auto mode on Linux moved no bytes through splice"
            );
        }
        for (_, stop) in backends {
            stop.store(true, Ordering::SeqCst);
        }
    }

    #[test]
    fn half_close_matrix_across_modes() {
        for mode in modes_under_test() {
            // Client EOF first: the echo backend answers until the client
            // shuts its write side, then the relay drains and closes.
            let (echo_addr, echo_stop) = spawn_echo_backend(0);
            let lb = RelayLb::start_with_mode("127.0.0.1:0", 1, vec![echo_addr], mode)
                .expect("bind");
            std::thread::sleep(Duration::from_millis(15));
            relay_round_trip(lb.local_addr(), "client-eof-first");
            lb.shutdown();
            echo_stop.store(true, Ordering::SeqCst);

            // Backend EOF first: the backend half-closes immediately; the
            // client must still be able to push bytes upstream afterwards.
            let (addr, stop, received) = spawn_closer_backend();
            let lb = RelayLb::start_with_mode("127.0.0.1:0", 1, vec![addr], mode).expect("bind");
            std::thread::sleep(Duration::from_millis(15));
            let mut s = TcpStream::connect(lb.local_addr()).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut down = Vec::new();
            let mut r = s.try_clone().unwrap();
            r.read_to_end(&mut down).expect("drain to backend EOF");
            assert_eq!(down, b"bye\n", "{mode:?}: backend farewell corrupted");
            s.write_all(b"after-backend-eof").unwrap();
            s.shutdown(Shutdown::Write).unwrap();
            let got = await_received(&received, "after-backend-eof".len());
            assert_eq!(got, b"after-backend-eof", "{mode:?}");
            lb.shutdown();
            stop.store(true, Ordering::SeqCst);

            // Simultaneous: both sides half-close without waiting for the
            // other; every byte in flight must still be delivered.
            let (addr, stop, received) = spawn_closer_backend();
            let lb = RelayLb::start_with_mode("127.0.0.1:0", 1, vec![addr], mode).expect("bind");
            std::thread::sleep(Duration::from_millis(15));
            let mut s = TcpStream::connect(lb.local_addr()).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            s.write_all(b"both-sides-close").unwrap();
            s.shutdown(Shutdown::Write).unwrap();
            let mut down = Vec::new();
            s.read_to_end(&mut down).expect("drain to backend EOF");
            assert_eq!(down, b"bye\n", "{mode:?}: simultaneous close lost bytes");
            let got = await_received(&received, "both-sides-close".len());
            assert_eq!(got, b"both-sides-close", "{mode:?}");
            let rstats = Arc::clone(lb.relay_stats());
            lb.shutdown();
            assert_eq!(
                rstats.relayed.load(Ordering::Relaxed),
                1,
                "{mode:?}: a relay leaked past shutdown"
            );
            if mode == (RelayMode::Reactor { splice: true }) {
                assert_eq!(
                    rstats.splice_fallbacks.load(Ordering::Relaxed),
                    0,
                    "splice demoted on plain TCP sockets"
                );
            }
            stop.store(true, Ordering::SeqCst);
        }
    }

    #[test]
    fn slow_reader_backpressure_survives_bounded_pipes() {
        // 1 MiB through bounded staging (a capacity-limited pipe or the
        // 16 KiB scratch buffer) against a deliberately slow client
        // reader: backpressure must throttle the backend->client
        // direction without losing or reordering a byte, in every mode.
        let payload: Vec<u8> = (0..1024 * 1024).map(|i| (i % 251) as u8).collect();
        for mode in modes_under_test() {
            let (addr, stop) = spawn_echo_backend(0);
            let lb = RelayLb::start_with_mode("127.0.0.1:0", 1, vec![addr], mode).expect("bind");
            std::thread::sleep(Duration::from_millis(15));
            let mut s = TcpStream::connect(lb.local_addr()).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            let mut reader = s.try_clone().unwrap();
            let want = payload.len();
            let collector = std::thread::spawn(move || {
                // Slow start: dribble the first reads so every staging
                // buffer between backend and client fills to capacity.
                std::thread::sleep(Duration::from_millis(150));
                let mut got = Vec::with_capacity(want + 16);
                let mut small = [0u8; 512];
                for _ in 0..32 {
                    match reader.read(&mut small) {
                        Ok(0) | Err(_) => return got,
                        Ok(n) => got.extend_from_slice(&small[..n]),
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                let mut chunk = [0u8; 16 * 1024];
                loop {
                    match reader.read(&mut chunk) {
                        Ok(0) | Err(_) => break,
                        Ok(n) => got.extend_from_slice(&chunk[..n]),
                    }
                }
                got
            });
            s.write_all(&payload).unwrap();
            s.shutdown(Shutdown::Write).unwrap();
            let got = collector.join().unwrap();
            let rstats = Arc::clone(lb.relay_stats());
            lb.shutdown();
            // greeting ("hello-0\n" = 8 bytes) + the full echoed payload.
            assert_eq!(got.len(), 8 + payload.len(), "{mode:?}: bytes lost");
            assert_eq!(&got[..8], b"hello-0\n", "{mode:?}");
            assert_eq!(&got[8..], &payload[..], "{mode:?}: payload corrupted");
            if mode == (RelayMode::Reactor { splice: true }) {
                assert!(
                    rstats.splice_bytes.load(Ordering::Relaxed) as usize >= payload.len(),
                    "splice path moved too few bytes"
                );
                assert_eq!(rstats.splice_fallbacks.load(Ordering::Relaxed), 0);
            }
            stop.store(true, Ordering::SeqCst);
        }
    }

    #[test]
    fn reactor_worker_idles_without_pumping() {
        if !reactor::supported() {
            eprintln!("SKIP: reactor requires Linux");
            return;
        }
        let (addr, stop) = spawn_echo_backend(0);
        let lb = RelayLb::start_with_mode(
            "127.0.0.1:0",
            1,
            vec![addr],
            RelayMode::Reactor { splice: true },
        )
        .expect("bind");
        std::thread::sleep(Duration::from_millis(15));
        // Hold one live but idle relay open across the measurement.
        let mut s = TcpStream::connect(lb.local_addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut r = BufReader::new(s.try_clone().unwrap());
        let mut greeting = String::new();
        r.read_line(&mut greeting).unwrap();
        std::thread::sleep(Duration::from_millis(100)); // quiesce
        let rstats = Arc::clone(lb.relay_stats());
        let before = rstats.pumps.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_secs(1));
        let after = rstats.pumps.load(Ordering::Relaxed);
        assert_eq!(
            after, before,
            "reactor pumped an idle connection {} times across an idle second",
            after - before
        );
        // The connection is still perfectly alive after the idle window.
        write!(s, "warm\n").unwrap();
        let mut echoed = String::new();
        r.read_line(&mut echoed).unwrap();
        assert_eq!(echoed.trim(), "warm");
        drop(r);
        drop(s);
        lb.shutdown();
        stop.store(true, Ordering::SeqCst);
    }

    #[test]
    fn sleep_poll_worker_burns_pumps_while_idle() {
        // The contrast figure for the idle-CPU property: the baseline
        // loop keeps polling an idle connection.
        let (addr, stop) = spawn_echo_backend(0);
        let lb = RelayLb::start_with_mode("127.0.0.1:0", 1, vec![addr], RelayMode::SleepPoll)
            .expect("bind");
        std::thread::sleep(Duration::from_millis(15));
        let s = TcpStream::connect(lb.local_addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut r = BufReader::new(s.try_clone().unwrap());
        let mut greeting = String::new();
        r.read_line(&mut greeting).unwrap();
        let rstats = Arc::clone(lb.relay_stats());
        let before = rstats.pumps.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(300));
        let after = rstats.pumps.load(Ordering::Relaxed);
        assert!(
            after > before,
            "sleep-poll loop unexpectedly stopped polling its idle connection"
        );
        drop(r);
        drop(s);
        lb.shutdown();
        stop.store(true, Ordering::SeqCst);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn splice_demotion_recovers_pipe_bytes() {
        // Stage bytes in a splice direction's pipe, then demote: the
        // bytes must surface intact in the copy-path buffer.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        let pipe = PipePair::new().unwrap();
        client.write_all(b"must-not-be-dropped").unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let n = match reactor::splice_to_pipe(server.as_raw_fd(), &pipe, 4096).unwrap() {
            Splice::Moved(n) => n,
            other => panic!("expected Moved, got {other:?}"),
        };
        let mut dir = DirBuf::Splice { pipe, buffered: n };
        let mut scratch = vec![0u8; SCRATCH_BYTES];
        dir.demote(&mut scratch).unwrap();
        match dir {
            DirBuf::Copy(buf) => assert_eq!(&buf[..], b"must-not-be-dropped"),
            DirBuf::Splice { .. } => panic!("demote left the splice path in place"),
        }
    }

    #[test]
    fn late_backend_ids_clamp_instead_of_panicking() {
        // Regression: per_backend is sized at startup; a later table
        // version can reference backend ids past the vector. Those must
        // clamp into unindexed_backends, not index out of bounds.
        let rstats = RelayStats {
            per_backend: (0..2).map(|_| AtomicU64::new(0)).collect(),
            ..RelayStats::default()
        };
        rstats.note_backend(1);
        rstats.note_backend(7);
        rstats.note_backend(2);
        assert_eq!(rstats.per_backend[1].load(Ordering::Relaxed), 1);
        assert_eq!(rstats.per_backend[0].load(Ordering::Relaxed), 0);
        assert_eq!(rstats.unindexed_backends.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn draining_backend_keeps_existing_relay_but_takes_no_new_ones() {
        let backends: Vec<_> = (0..2).map(spawn_echo_backend).collect();
        let addrs: Vec<SocketAddr> = backends.iter().map(|(a, _)| *a).collect();
        let lb = RelayLb::start("127.0.0.1:0", 2, addrs).expect("bind");
        let addr = lb.local_addr();
        std::thread::sleep(Duration::from_millis(15));

        // Open a long-lived relay and learn its backend.
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut r = BufReader::new(s.try_clone().unwrap());
        let mut greeting = String::new();
        r.read_line(&mut greeting).unwrap();
        let pinned: usize = greeting.trim().strip_prefix("hello-").unwrap().parse().unwrap();

        // Drain that backend: new admissions must avoid it…
        assert!(lb.pool().set_health(pinned, HealthState::Draining, 0));
        let other = 1 - pinned;
        for i in 0..8 {
            assert_eq!(
                relay_round_trip(addr, &format!("fresh-{i}")),
                other,
                "new connection landed on a draining backend"
            );
        }
        // …while the established relay keeps serving through it.
        write!(s, "still-here\n").unwrap();
        let mut echoed = String::new();
        r.read_line(&mut echoed).unwrap();
        assert_eq!(echoed.trim(), "still-here");
        s.shutdown(Shutdown::Write).unwrap();
        let mut rest = String::new();
        let _ = r.read_to_string(&mut rest);
        lb.shutdown();
        for (_, stop) in backends {
            stop.store(true, Ordering::SeqCst);
        }
    }

    #[test]
    fn connect_failure_retries_next_candidate() {
        // Backend 0 is a dead address (bound then dropped: connect refused);
        // backend 1 is live. Every relay must end up on 1, with retries
        // recorded for the clients whose pinned candidate was 0.
        let dead_addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let (live_addr, stop) = spawn_echo_backend(1);
        let lb = RelayLb::start("127.0.0.1:0", 2, vec![dead_addr, live_addr]).expect("bind");
        let addr = lb.local_addr();
        std::thread::sleep(Duration::from_millis(15));
        for i in 0..16 {
            assert_eq!(relay_round_trip(addr, &format!("retry-{i}")), 1);
        }
        let rstats = Arc::clone(lb.relay_stats());
        lb.shutdown();
        assert!(
            rstats.connect_retries.load(Ordering::Relaxed) > 0,
            "no client was pinned to the dead backend across 16 flows"
        );
        assert_eq!(rstats.failed_connects.load(Ordering::Relaxed), 0);
        assert_eq!(rstats.per_backend[1].load(Ordering::Relaxed), 16);
        assert_eq!(rstats.per_backend[0].load(Ordering::Relaxed), 0);
        stop.store(true, Ordering::SeqCst);
    }

    #[test]
    fn down_pool_refuses_new_relays() {
        let (live_addr, stop) = spawn_echo_backend(0);
        let lb = RelayLb::start("127.0.0.1:0", 1, vec![live_addr]).expect("bind");
        let addr = lb.local_addr();
        std::thread::sleep(Duration::from_millis(15));
        assert!(lb.pool().set_health(0, HealthState::Down, 0));
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        // The relay drops the client without a backend: EOF, no greeting.
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        assert!(out.is_empty(), "got bytes from a fully-down pool: {out:?}");
        let rstats = Arc::clone(lb.relay_stats());
        lb.shutdown();
        assert!(rstats.failed_connects.load(Ordering::Relaxed) >= 1);
        stop.store(true, Ordering::SeqCst);
    }

    #[test]
    fn half_close_with_large_payload_exercises_backpressure() {
        // 64 KiB through the default-mode staging buffers: the echo path
        // must chunk through the relay's strict-backpressure stores, and
        // half-close must still deliver every byte after the client stops
        // sending.
        let (live_addr, stop) = spawn_echo_backend(0);
        let lb = RelayLb::start("127.0.0.1:0", 1, vec![live_addr]).expect("bind");
        let addr = lb.local_addr();
        std::thread::sleep(Duration::from_millis(15));
        let payload = vec![0xA5u8; 64 * 1024];
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut reader = s.try_clone().unwrap();
        let want = payload.len();
        let collector = std::thread::spawn(move || {
            let mut got = Vec::with_capacity(want + 16);
            let mut chunk = [0u8; 4096];
            loop {
                match reader.read(&mut chunk) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => got.extend_from_slice(&chunk[..n]),
                }
            }
            got
        });
        s.write_all(&payload).unwrap();
        s.shutdown(Shutdown::Write).unwrap();
        let got = collector.join().unwrap();
        lb.shutdown();
        // greeting ("hello-0\n" = 8 bytes) + the full echoed payload.
        assert_eq!(got.len(), 8 + payload.len(), "bytes lost in the relay");
        assert_eq!(&got[..8], b"hello-0\n");
        assert!(got[8..].iter().all(|&b| b == 0xA5), "payload corrupted");
        stop.store(true, Ordering::SeqCst);
    }
}
