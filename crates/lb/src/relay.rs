//! The backend data plane over real sockets: a client↔backend byte relay.
//!
//! Where [`crate::server`] terminates HTTP and answers from in-process
//! upstreams, this module *forwards*: each accepted client connection is
//! admitted against the current [`hermes_backend::BackendTable`] version,
//! connected to the selected backend (walking the admitted table's
//! deterministic candidate order on connect failure), and then pumped —
//! bytes move client↔backend through one per-worker reused scratch buffer,
//! a burst of connections per loop iteration, mirroring the 64-connection
//! accept burst of the front end.
//!
//! Consistency: a connection resolves its backend *once*, at admission,
//! against the table version current at accept time. Later churn (drain,
//! flap, scale) publishes new versions for *new* connections; established
//! relays keep their TCP peer until either side closes. That is exactly
//! the frozen-snapshot contract the simnet churn suite proves at scale.
//!
//! Per-connection relay state handles the edges: half-close (EOF on one
//! side propagates `shutdown(Write)` to the other once buffered bytes
//! drain), strict backpressure (a side is read only when its forwarding
//! buffer is empty), connect failure (retry the next candidate in the
//! admitted table), and a hard per-connection deadline.

use crate::server::{accept_loop, flow_hash, GroupSync, LbStats, ACCEPT_BURST};
use bytes::BytesMut;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use hermes_backend::{BackendId, BackendPool, TableCache};
use hermes_core::sched::SchedConfig;
use hermes_core::sdk::{SyncTarget, WorkerSession};
use hermes_core::wst::Wst;
use hermes_ebpf::{ExecTier, ReuseportGroup};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Backend connect timeout: long enough for loopback/LAN, short enough
/// that walking a few dead candidates stays well under a second.
const CONNECT_TIMEOUT: Duration = Duration::from_millis(250);

/// Hard ceiling on one relay's lifetime: a stuck peer must not pin worker
/// state forever (the relay analogue of the front end's slow-loris guard).
const RELAY_DEADLINE: Duration = Duration::from_secs(30);

/// Scratch buffer size for byte moves (shared per worker across all of
/// its relays).
const SCRATCH_BYTES: usize = 16 * 1024;

/// Cap on scratch-fulls moved per direction per pump, so one hot relay
/// cannot starve its siblings on the same worker.
const MOVES_PER_PUMP: usize = 4;

/// Relay-specific counters (dispatch counters live in [`LbStats`]).
#[derive(Debug, Default)]
pub struct RelayStats {
    /// Relay connections fully torn down.
    pub relayed: AtomicU64,
    /// Bytes moved client → backend.
    pub bytes_up: AtomicU64,
    /// Bytes moved backend → client.
    pub bytes_down: AtomicU64,
    /// Connect attempts beyond the pinned candidate (failure → next).
    pub connect_retries: AtomicU64,
    /// Client connections dropped because no admitted candidate accepted.
    pub failed_connects: AtomicU64,
    /// Relay connections established per backend.
    pub per_backend: Vec<AtomicU64>,
}

/// A running TCP relay LB.
pub struct RelayLb {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<LbStats>,
    relay_stats: Arc<RelayStats>,
    pool: Arc<BackendPool>,
}

impl RelayLb {
    /// Bind `addr`, spawn `workers` relay workers over `backends`, and
    /// start accepting. The pool starts with every backend `Healthy`;
    /// drive churn through [`RelayLb::pool`].
    pub fn start(
        addr: impl ToSocketAddrs,
        workers: usize,
        backends: Vec<SocketAddr>,
    ) -> std::io::Result<RelayLb> {
        assert!((1..=64).contains(&workers), "1..=64 workers");
        assert!(!backends.is_empty(), "relay needs at least one backend");
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(LbStats {
            accepted: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            ..LbStats::default()
        });
        let relay_stats = Arc::new(RelayStats {
            per_backend: (0..backends.len()).map(|_| AtomicU64::new(0)).collect(),
            ..RelayStats::default()
        });
        let pool = Arc::new(BackendPool::new(backends.len()));
        let backends = Arc::new(backends);
        let wst = Arc::new(Wst::new(workers));
        let group = Arc::new(ReuseportGroup::new(workers));
        // Same admission bar as the HTTP front end: statically verified
        // and translation-validated dispatch only.
        assert_eq!(
            group.tier(),
            ExecTier::native_ceiling(),
            "dispatch program failed static verification:\n{}",
            group.analysis().render(group.program())
        );
        assert!(
            group.validation().blocks_proven() > 0,
            "compiled dispatch admitted without a translation proof"
        );

        let mut senders: Vec<Sender<TcpStream>> = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for id in 0..workers {
            let (tx, rx) = bounded::<TcpStream>(1024);
            senders.push(tx);
            let session = WorkerSession::new(
                Arc::clone(&wst),
                id,
                SchedConfig::default(),
                Arc::new(GroupSync(Arc::clone(&group))),
            );
            let stats = Arc::clone(&stats);
            let relay_stats = Arc::clone(&relay_stats);
            let shutdown = Arc::clone(&shutdown);
            let pool = Arc::clone(&pool);
            let backends = Arc::clone(&backends);
            handles.push(std::thread::spawn(move || {
                relay_worker_loop(
                    id,
                    rx,
                    session,
                    pool,
                    backends,
                    stats,
                    relay_stats,
                    shutdown,
                )
            }));
        }

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || {
                accept_loop(listener, senders, group, stats, shutdown);
            })
        };

        Ok(RelayLb {
            local_addr,
            shutdown,
            acceptor: Some(acceptor),
            workers: handles,
            stats,
            relay_stats,
            pool,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Dispatch counters (accepts, directed/fallback).
    pub fn stats(&self) -> &Arc<LbStats> {
        &self.stats
    }

    /// Relay counters (bytes, retries, per-backend spread).
    pub fn relay_stats(&self) -> &Arc<RelayStats> {
        &self.relay_stats
    }

    /// The versioned backend pool: drive health transitions (drain, down,
    /// recover) here; each publishes a new frozen table for new admissions.
    pub fn pool(&self) -> &Arc<BackendPool> {
        &self.pool
    }

    /// Stop accepting, drain relays, join threads.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for RelayLb {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

/// Outcome of one pump pass over a relay.
enum Pump {
    /// Still alive; `0` bytes moved means both sides would block.
    Progress(u64),
    /// Both directions saw EOF and every buffered byte was delivered.
    Done,
    /// A socket error (reset, deadline): tear down.
    Dead,
}

/// One established relay: client socket, backend socket, and the
/// in-flight byte buffers for each direction.
struct RelayConn {
    client: TcpStream,
    backend: TcpStream,
    backend_id: BackendId,
    /// Table version this connection was admitted under (observability:
    /// proves which snapshot the routing decision came from).
    admitted_version: u64,
    to_backend: BytesMut,
    to_client: BytesMut,
    client_eof: bool,
    backend_eof: bool,
    backend_shut: bool,
    client_shut: bool,
    bytes_up: u64,
    bytes_down: u64,
    deadline: Instant,
}

impl RelayConn {
    fn new(client: TcpStream, backend: TcpStream, backend_id: BackendId, version: u64) -> Self {
        Self {
            client,
            backend,
            backend_id,
            admitted_version: version,
            to_backend: BytesMut::with_capacity(SCRATCH_BYTES),
            to_client: BytesMut::with_capacity(SCRATCH_BYTES),
            client_eof: false,
            backend_eof: false,
            backend_shut: false,
            client_shut: false,
            bytes_up: 0,
            bytes_down: 0,
            deadline: Instant::now() + RELAY_DEADLINE,
        }
    }

    /// Move bytes in both directions until the sockets would block (or the
    /// per-pump cap). Returns the relay's life status.
    fn pump(&mut self, scratch: &mut [u8]) -> Pump {
        if Instant::now() >= self.deadline {
            return Pump::Dead;
        }
        let up = pump_direction(
            &mut self.client,
            &mut self.backend,
            &mut self.to_backend,
            &mut self.client_eof,
            &mut self.backend_shut,
            scratch,
        );
        let down = pump_direction(
            &mut self.backend,
            &mut self.client,
            &mut self.to_client,
            &mut self.backend_eof,
            &mut self.client_shut,
            scratch,
        );
        match (up, down) {
            (Ok(u), Ok(d)) => {
                self.bytes_up += u;
                self.bytes_down += d;
                let drained = self.to_backend.is_empty() && self.to_client.is_empty();
                if self.client_eof && self.backend_eof && drained {
                    Pump::Done
                } else {
                    Pump::Progress(u + d)
                }
            }
            _ => Pump::Dead,
        }
    }
}

/// Pump one direction (`src` → `dst` through `buf`): flush what is
/// buffered, read more only when the buffer is empty (strict
/// backpressure), and propagate half-close once `src`'s EOF is fully
/// flushed. Returns bytes written to `dst`.
fn pump_direction(
    src: &mut TcpStream,
    dst: &mut TcpStream,
    buf: &mut BytesMut,
    src_eof: &mut bool,
    dst_shut: &mut bool,
    scratch: &mut [u8],
) -> std::io::Result<u64> {
    use std::io::ErrorKind;
    let mut moved = 0u64;
    'moves: for _ in 0..MOVES_PER_PUMP {
        while !buf.is_empty() {
            match dst.write(&buf[..]) {
                Ok(0) => return Err(ErrorKind::WriteZero.into()),
                Ok(n) => {
                    let _ = buf.split_to(n);
                    moved += n as u64;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break 'moves,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if *src_eof {
            break;
        }
        match src.read(scratch) {
            Ok(0) => {
                *src_eof = true;
                break;
            }
            Ok(n) => buf.extend_from_slice(&scratch[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    if *src_eof && buf.is_empty() && !*dst_shut {
        // Half-close: the reader saw EOF and everything it buffered has
        // been delivered — tell the other side no more bytes are coming,
        // while its responses keep flowing the opposite way.
        let _ = dst.shutdown(Shutdown::Write);
        *dst_shut = true;
    }
    Ok(moved)
}

/// Admit a freshly dispatched client against the current table version and
/// connect it to a backend, walking the admitted candidate order on
/// connect failure. `None` drops the client (no candidate reachable).
fn open_relay(
    client: TcpStream,
    pool: &BackendPool,
    cache: &mut TableCache,
    backends: &[SocketAddr],
    rstats: &RelayStats,
) -> Option<RelayConn> {
    let hash = match (client.peer_addr(), client.local_addr()) {
        (Ok(peer), Ok(local)) => flow_hash(&peer, &local),
        _ => return None, // peer vanished between accept and hand-off
    };
    let table = pool.cached(cache);
    let Some(adm) = table.admit(hash) else {
        rstats.failed_connects.fetch_add(1, Ordering::Relaxed);
        return None; // nothing admits new connections right now
    };
    let mut attempt = 0;
    while let Some(b) = adm.candidate(attempt) {
        if attempt > 0 {
            rstats.connect_retries.fetch_add(1, Ordering::Relaxed);
            hermes_trace::trace_count!(hermes_trace::CounterId::BackendRetries);
        }
        match TcpStream::connect_timeout(&backends[b], CONNECT_TIMEOUT) {
            Ok(backend) => {
                let _ = client.set_nonblocking(true);
                let _ = client.set_nodelay(true);
                let _ = backend.set_nonblocking(true);
                let _ = backend.set_nodelay(true);
                rstats.per_backend[b].fetch_add(1, Ordering::Relaxed);
                return Some(RelayConn::new(client, backend, b, adm.version()));
            }
            Err(_) => attempt += 1,
        }
    }
    rstats.failed_connects.fetch_add(1, Ordering::Relaxed);
    None
}

/// One relay worker: the Fig. 9 loop shape over a socket channel, with
/// the "handle events" phase pumping every live relay once per iteration.
#[allow(clippy::too_many_arguments)]
fn relay_worker_loop<T: SyncTarget>(
    id: usize,
    rx: Receiver<TcpStream>,
    mut session: WorkerSession<T>,
    pool: Arc<BackendPool>,
    backends: Arc<Vec<SocketAddr>>,
    stats: Arc<LbStats>,
    rstats: Arc<RelayStats>,
    shutdown: Arc<AtomicBool>,
) {
    let epoch = Instant::now();
    let now_ns = move || epoch.elapsed().as_nanos() as u64;
    let lane = id as u32;
    let mut cache = TableCache::new();
    let mut conns: Vec<RelayConn> = Vec::new();
    let mut scratch = vec![0u8; SCRATCH_BYTES];
    loop {
        session.loop_top(now_ns());
        // Fetch a burst of newly dispatched connections. Block (the 5 ms
        // epoll_wait stand-in) only when there is nothing to pump.
        let mut fetched = 0usize;
        if conns.is_empty() {
            match rx.recv_timeout(Duration::from_millis(5)) {
                Ok(stream) => {
                    admit(stream, &mut conns, id, lane, &now_ns, &mut session, &pool, &mut cache, &backends, &stats, &rstats);
                    fetched += 1;
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
        while fetched < ACCEPT_BURST {
            match rx.try_recv() {
                Ok(stream) => {
                    admit(stream, &mut conns, id, lane, &now_ns, &mut session, &pool, &mut cache, &backends, &stats, &rstats);
                    fetched += 1;
                }
                Err(_) => break,
            }
        }
        session.events_fetched(fetched);
        for _ in 0..fetched {
            session.event_handled();
        }

        // Pump every live relay once through the shared scratch buffer.
        let mut moved = 0u64;
        let mut i = 0;
        while i < conns.len() {
            match conns[i].pump(&mut scratch) {
                Pump::Progress(n) => {
                    moved += n;
                    i += 1;
                }
                Pump::Done | Pump::Dead => {
                    // Dropping the RelayConn closes both sockets; Dead
                    // relays leave only the counters as residue.
                    let c = conns.swap_remove(i);
                    rstats.relayed.fetch_add(1, Ordering::Relaxed);
                    rstats.bytes_up.fetch_add(c.bytes_up, Ordering::Relaxed);
                    rstats.bytes_down.fetch_add(c.bytes_down, Ordering::Relaxed);
                    session.conn_closed();
                    hermes_trace::trace_event!(
                        now_ns(),
                        hermes_trace::EventKind::ConnClose,
                        lane,
                        c.backend_id,
                        c.admitted_version
                    );
                }
            }
        }
        if moved > 0 || fetched > 0 {
            hermes_trace::trace_count!(hermes_trace::CounterId::RelayBursts);
            hermes_trace::trace_count!(hermes_trace::CounterId::RelayBytes, moved);
        } else if !conns.is_empty() {
            // Everything would block: yield briefly instead of spinning.
            std::thread::sleep(Duration::from_micros(200));
        }
        let decision = session.schedule_only(now_ns());
        session.sync_only(decision.bitmap);
        if shutdown.load(Ordering::SeqCst) && rx.is_empty() && conns.is_empty() {
            return;
        }
    }
}

/// Accept-side bookkeeping for one dispatched client: WST + stats +
/// trace, then admission and backend connect.
#[allow(clippy::too_many_arguments)]
fn admit<T: SyncTarget>(
    stream: TcpStream,
    conns: &mut Vec<RelayConn>,
    id: usize,
    lane: u32,
    now_ns: &impl Fn() -> u64,
    session: &mut WorkerSession<T>,
    pool: &BackendPool,
    cache: &mut TableCache,
    backends: &[SocketAddr],
    stats: &LbStats,
    rstats: &RelayStats,
) {
    stats.accepted[id].fetch_add(1, Ordering::Relaxed);
    if let Some(conn) = open_relay(stream, pool, cache, backends, rstats) {
        session.conn_opened();
        hermes_trace::trace_event!(
            now_ns(),
            hermes_trace::EventKind::ConnOpen,
            lane,
            conn.backend_id,
            conn.admitted_version
        );
        conns.push(conn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_backend::HealthState;
    use std::io::{BufRead, BufReader};

    /// A line-greeting echo backend: sends `hello-<id>\n` on connect, then
    /// echoes every byte until client EOF, then closes.
    fn spawn_echo_backend(id: usize) -> (SocketAddr, Arc<AtomicBool>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind backend");
        let addr = listener.local_addr().unwrap();
        listener.set_nonblocking(true).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop2.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((mut s, _)) => {
                        std::thread::spawn(move || {
                            let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
                            let _ = s.set_nodelay(true);
                            if s.write_all(format!("hello-{id}\n").as_bytes()).is_err() {
                                return;
                            }
                            let mut chunk = [0u8; 1024];
                            loop {
                                match s.read(&mut chunk) {
                                    Ok(0) | Err(_) => break,
                                    Ok(n) => {
                                        if s.write_all(&chunk[..n]).is_err() {
                                            break;
                                        }
                                    }
                                }
                            }
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => break,
                }
            }
        });
        (addr, stop)
    }

    /// Connect through the relay, read the greeting, exchange one echo
    /// round-trip, half-close, and drain to EOF. Returns the backend id
    /// that greeted.
    fn relay_round_trip(addr: SocketAddr, payload: &str) -> usize {
        let mut s = TcpStream::connect(addr).expect("connect relay");
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.set_nodelay(true).unwrap();
        let mut r = BufReader::new(s.try_clone().unwrap());
        let mut greeting = String::new();
        r.read_line(&mut greeting).expect("greeting");
        let backend: usize = greeting
            .trim()
            .strip_prefix("hello-")
            .unwrap_or_else(|| panic!("bad greeting {greeting:?}"))
            .parse()
            .unwrap();
        write!(s, "{payload}\n").unwrap();
        let mut echoed = String::new();
        r.read_line(&mut echoed).expect("echo");
        assert_eq!(echoed.trim(), payload);
        s.shutdown(Shutdown::Write).unwrap();
        let mut rest = String::new();
        let _ = r.read_to_string(&mut rest);
        assert!(rest.is_empty(), "unexpected trailing bytes {rest:?}");
        backend
    }

    #[test]
    fn relays_end_to_end_and_spreads_across_backends() {
        let backends: Vec<_> = (0..4).map(spawn_echo_backend).collect();
        let addrs: Vec<SocketAddr> = backends.iter().map(|(a, _)| *a).collect();
        let lb = RelayLb::start("127.0.0.1:0", 4, addrs).expect("bind");
        let addr = lb.local_addr();
        std::thread::sleep(Duration::from_millis(15)); // first bitmaps
        let mut used = std::collections::HashSet::new();
        for i in 0..24 {
            used.insert(relay_round_trip(addr, &format!("ping-{i}")));
        }
        let rstats = Arc::clone(lb.relay_stats());
        lb.shutdown();
        assert!(used.len() >= 2, "all relays landed on one backend: {used:?}");
        let landed: u64 = rstats
            .per_backend
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .sum();
        assert_eq!(landed, 24);
        assert_eq!(rstats.relayed.load(Ordering::Relaxed), 24);
        assert_eq!(rstats.failed_connects.load(Ordering::Relaxed), 0);
        // Greeting + echo flowed down; payload flowed up.
        assert!(rstats.bytes_down.load(Ordering::Relaxed) > rstats.bytes_up.load(Ordering::Relaxed));
        for (_, stop) in backends {
            stop.store(true, Ordering::SeqCst);
        }
    }

    #[test]
    fn draining_backend_keeps_existing_relay_but_takes_no_new_ones() {
        let backends: Vec<_> = (0..2).map(spawn_echo_backend).collect();
        let addrs: Vec<SocketAddr> = backends.iter().map(|(a, _)| *a).collect();
        let lb = RelayLb::start("127.0.0.1:0", 2, addrs).expect("bind");
        let addr = lb.local_addr();
        std::thread::sleep(Duration::from_millis(15));

        // Open a long-lived relay and learn its backend.
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut r = BufReader::new(s.try_clone().unwrap());
        let mut greeting = String::new();
        r.read_line(&mut greeting).unwrap();
        let pinned: usize = greeting.trim().strip_prefix("hello-").unwrap().parse().unwrap();

        // Drain that backend: new admissions must avoid it…
        assert!(lb.pool().set_health(pinned, HealthState::Draining, 0));
        let other = 1 - pinned;
        for i in 0..8 {
            assert_eq!(
                relay_round_trip(addr, &format!("fresh-{i}")),
                other,
                "new connection landed on a draining backend"
            );
        }
        // …while the established relay keeps serving through it.
        write!(s, "still-here\n").unwrap();
        let mut echoed = String::new();
        r.read_line(&mut echoed).unwrap();
        assert_eq!(echoed.trim(), "still-here");
        s.shutdown(Shutdown::Write).unwrap();
        let mut rest = String::new();
        let _ = r.read_to_string(&mut rest);
        lb.shutdown();
        for (_, stop) in backends {
            stop.store(true, Ordering::SeqCst);
        }
    }

    #[test]
    fn connect_failure_retries_next_candidate() {
        // Backend 0 is a dead address (bound then dropped: connect refused);
        // backend 1 is live. Every relay must end up on 1, with retries
        // recorded for the clients whose pinned candidate was 0.
        let dead_addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let (live_addr, stop) = spawn_echo_backend(1);
        let lb = RelayLb::start("127.0.0.1:0", 2, vec![dead_addr, live_addr]).expect("bind");
        let addr = lb.local_addr();
        std::thread::sleep(Duration::from_millis(15));
        for i in 0..16 {
            assert_eq!(relay_round_trip(addr, &format!("retry-{i}")), 1);
        }
        let rstats = Arc::clone(lb.relay_stats());
        lb.shutdown();
        assert!(
            rstats.connect_retries.load(Ordering::Relaxed) > 0,
            "no client was pinned to the dead backend across 16 flows"
        );
        assert_eq!(rstats.failed_connects.load(Ordering::Relaxed), 0);
        assert_eq!(rstats.per_backend[1].load(Ordering::Relaxed), 16);
        assert_eq!(rstats.per_backend[0].load(Ordering::Relaxed), 0);
        stop.store(true, Ordering::SeqCst);
    }

    #[test]
    fn down_pool_refuses_new_relays() {
        let (live_addr, stop) = spawn_echo_backend(0);
        let lb = RelayLb::start("127.0.0.1:0", 1, vec![live_addr]).expect("bind");
        let addr = lb.local_addr();
        std::thread::sleep(Duration::from_millis(15));
        assert!(lb.pool().set_health(0, HealthState::Down, 0));
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        // The relay drops the client without a backend: EOF, no greeting.
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        assert!(out.is_empty(), "got bytes from a fully-down pool: {out:?}");
        let rstats = Arc::clone(lb.relay_stats());
        lb.shutdown();
        assert!(rstats.failed_connects.load(Ordering::Relaxed) >= 1);
        stop.store(true, Ordering::SeqCst);
    }

    #[test]
    fn half_close_with_large_payload_exercises_backpressure() {
        // 64 KiB through a 16 KiB scratch buffer: the echo path must chunk
        // through the relay's strict-backpressure buffers, and half-close
        // must still deliver every byte after the client stops sending.
        let (live_addr, stop) = spawn_echo_backend(0);
        let lb = RelayLb::start("127.0.0.1:0", 1, vec![live_addr]).expect("bind");
        let addr = lb.local_addr();
        std::thread::sleep(Duration::from_millis(15));
        let payload = vec![0xA5u8; 64 * 1024];
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut reader = s.try_clone().unwrap();
        let want = payload.len();
        let collector = std::thread::spawn(move || {
            let mut got = Vec::with_capacity(want + 16);
            let mut chunk = [0u8; 4096];
            loop {
                match reader.read(&mut chunk) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => got.extend_from_slice(&chunk[..n]),
                }
            }
            got
        });
        s.write_all(&payload).unwrap();
        s.shutdown(Shutdown::Write).unwrap();
        let got = collector.join().unwrap();
        lb.shutdown();
        // greeting ("hello-0\n" = 8 bytes) + the full echoed payload.
        assert_eq!(got.len(), 8 + payload.len(), "bytes lost in the relay");
        assert_eq!(&got[..8], b"hello-0\n");
        assert!(got[8..].iter().all(|&b| b == 0xA5), "payload corrupted");
        stop.store(true, Ordering::SeqCst);
    }
}
