//! A real TCP front end with Hermes-dispatched worker threads.
//!
//! Shape (and its one substitution): in production the kernel's reuseport
//! hook places each SYN directly onto a worker's listening socket. A
//! portable std-only process cannot open N reuseport sockets, so an
//! acceptor thread stands in for the kernel: it accepts, computes the
//! connection hash, runs the *same verified eBPF dispatch program*
//! (`hermes_ebpf::ReuseportGroup`), and hands the socket to the chosen
//! worker over a channel. Workers run the Fig. 9 loop via the core SDK:
//! status hooks around a 5 ms-timeout receive, run-to-completion
//! connection handling, `schedule_and_sync` at the loop end.

use crate::proxy::Proxy;
use crate::reactor::{self, Reactor, Waker};
use bytes::BytesMut;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use hermes_core::dispatch::DispatchOutcome;
use hermes_core::sched::SchedConfig;
use hermes_core::sdk::{SyncTarget, WorkerSession};
use hermes_core::wst::Wst;
use hermes_core::FlowKey;
use hermes_ebpf::{ExecTier, GroupedReuseportGroup, ReuseportGroup};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

pub(crate) struct GroupSync(pub(crate) Arc<ReuseportGroup>);

impl SyncTarget for GroupSync {
    fn sync(&self, bitmap: hermes_core::WorkerBitmap) {
        self.0.sync_bitmap(bitmap);
    }
}

/// Sync target for one shard of a sharded deployment: publishes into that
/// group's selection map (redundant stores elided inside the grouped map).
struct ShardSync {
    group: Arc<GroupedReuseportGroup>,
    index: usize,
}

impl SyncTarget for ShardSync {
    fn sync(&self, bitmap: hermes_core::WorkerBitmap) {
        self.group.sync_group_bitmap(self.index, bitmap);
    }
}

/// Counters shared with callers for observability/tests.
#[derive(Debug, Default)]
pub struct LbStats {
    /// Connections accepted per worker.
    pub accepted: Vec<AtomicU64>,
    /// Requests served (all workers).
    pub requests: AtomicU64,
    /// Dispatches that took the directed bitmap path.
    pub directed: AtomicU64,
    /// Dispatches that fell back to hashing.
    pub fallback: AtomicU64,
}

/// A running TCP L7 LB.
pub struct TcpLb {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<LbStats>,
}

impl TcpLb {
    /// Bind `addr`, spawn `workers` worker threads serving `proxy`, and
    /// start accepting.
    pub fn start(addr: impl ToSocketAddrs, workers: usize, proxy: Proxy) -> std::io::Result<TcpLb> {
        assert!((1..=64).contains(&workers), "1..=64 workers");
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(LbStats {
            accepted: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            ..LbStats::default()
        });
        let wst = Arc::new(Wst::new(workers));
        let group = Arc::new(ReuseportGroup::new(workers));
        // Serve only on a statically verified *and validated* dispatch
        // program: the analysis must have proven it clean (zero warnings)
        // and the translation validator must have certified the compiled
        // artifact bit-exact against checked semantics.
        assert_eq!(
            group.tier(),
            ExecTier::native_ceiling(),
            "dispatch program failed static verification:\n{}",
            group.analysis().render(group.program())
        );
        assert!(
            group.validation().blocks_proven() > 0,
            "compiled dispatch admitted without a translation proof"
        );

        let mut senders: Vec<Sender<TcpStream>> = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for id in 0..workers {
            let (tx, rx) = bounded::<TcpStream>(1024);
            senders.push(tx);
            let session = WorkerSession::new(
                Arc::clone(&wst),
                id,
                SchedConfig::default(),
                Arc::new(GroupSync(Arc::clone(&group))),
            );
            let stats = Arc::clone(&stats);
            let shutdown = Arc::clone(&shutdown);
            let proxy = proxy.for_worker(id);
            handles.push(std::thread::spawn(move || {
                worker_loop(id, id as u32, rx, session, proxy, stats, shutdown)
            }));
        }

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            // HTTP workers block on their channel, not in epoll: no
            // wakers needed (the channel send itself unblocks them).
            let wakers = (0..senders.len()).map(|_| None).collect();
            std::thread::spawn(move || {
                accept_loop(listener, senders, wakers, group, stats, shutdown);
            })
        };

        Ok(TcpLb {
            local_addr,
            shutdown,
            acceptor: Some(acceptor),
            workers: handles,
            stats,
        })
    }

    /// Bind `addr` and serve `groups * group_size` workers sharded into
    /// per-group Worker Status Tables with the two-level (§7) dispatch
    /// program in front — the >64-worker deployment shape.
    ///
    /// Each shard runs its own scheduler instances over its own WST and
    /// publishes into its own selection map; the acceptor runs the grouped
    /// program once per accept burst. Worker threads keep group-local ids
    /// (the WST is per group) while stats and proxies index the flattened
    /// global id.
    pub fn start_sharded(
        addr: impl ToSocketAddrs,
        groups: usize,
        group_size: usize,
        proxy: Proxy,
    ) -> std::io::Result<TcpLb> {
        assert!((1..=64).contains(&groups), "1..=64 groups");
        assert!((1..=64).contains(&group_size), "1..=64 workers per group");
        let workers = groups * group_size;
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(LbStats {
            accepted: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            ..LbStats::default()
        });
        let group = Arc::new(GroupedReuseportGroup::new(groups, group_size));
        // Serve only on the lock-free, *validated* compiled tier: the
        // analysis must have proven every run-time map fd bounded to a
        // registered bank, and the translation validator must have
        // certified the compiled artifact bit-exact against checked
        // semantics.
        assert_eq!(
            group.tier(),
            ExecTier::native_ceiling(),
            "grouped dispatch program failed static verification:\n{}",
            group.analysis().render(group.program())
        );
        assert!(
            group.validation().blocks_proven() > 0,
            "grouped compiled dispatch admitted without a translation proof"
        );

        let wsts: Vec<Arc<Wst>> = (0..groups)
            .map(|_| Arc::new(Wst::new(group_size)))
            .collect();
        let mut senders: Vec<Sender<TcpStream>> = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for global in 0..workers {
            let (g, local) = (global / group_size, global % group_size);
            let (tx, rx) = bounded::<TcpStream>(1024);
            senders.push(tx);
            let session = WorkerSession::new(
                Arc::clone(&wsts[g]),
                local,
                SchedConfig::default(),
                Arc::new(ShardSync {
                    group: Arc::clone(&group),
                    index: g,
                }),
            )
            .with_trace_lane(hermes_trace::grouped_lane(g, group_size, local));
            let lane = hermes_trace::grouped_lane(g, group_size, local);
            let stats = Arc::clone(&stats);
            let shutdown = Arc::clone(&shutdown);
            let proxy = proxy.for_worker(global);
            handles.push(std::thread::spawn(move || {
                worker_loop(global, lane, rx, session, proxy, stats, shutdown)
            }));
        }

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || {
                accept_loop_sharded(listener, senders, group, stats, shutdown);
            })
        };

        Ok(TcpLb {
            local_addr,
            shutdown,
            acceptor: Some(acceptor),
            workers: handles,
            stats,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Shared counters.
    pub fn stats(&self) -> &Arc<LbStats> {
        &self.stats
    }

    /// Stop accepting, drain workers, join threads.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for TcpLb {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

/// Largest accept burst dispatched through one batched program run — the
/// workspace-wide batch geometry shared with the runtime driver.
pub(crate) const ACCEPT_BURST: usize = hermes_core::DISPATCH_BATCH;

/// Event-driven wait for the acceptor: the listening socket sits in a
/// (level-triggered) epoll set, so an idle acceptor blocks in the kernel
/// and wakes the moment a SYN completes — instead of the former 500 µs
/// sleep-poll, which burned wakeups while idle and added up to half a
/// millisecond of accept latency. Falls back to the sleep when epoll is
/// unavailable (non-Linux hosts, fd exhaustion).
pub(crate) struct AcceptWaiter {
    reactor: Option<Reactor>,
    events: Vec<reactor::Event>,
}

impl AcceptWaiter {
    pub(crate) fn new(listener: &TcpListener) -> AcceptWaiter {
        let reactor = Reactor::new()
            .ok()
            .filter(|r| r.register_read(listener.as_raw_fd(), 0).is_ok());
        AcceptWaiter {
            reactor,
            events: Vec::new(),
        }
    }

    /// Block until the listener is (probably) readable. Bounded at 5 ms
    /// either way so the shutdown flag stays responsive; level-triggered
    /// registration means a still-nonempty backlog re-reports immediately.
    pub(crate) fn wait(&mut self) {
        match &mut self.reactor {
            Some(r) => {
                let _ = r.wait(&mut self.events, 5);
            }
            None => std::thread::sleep(Duration::from_micros(500)),
        }
    }
}

/// The "kernel": drain the accept backlog into a burst, hash, run the
/// dispatch program once for the whole burst, hand off. Shared by the
/// HTTP front end and the byte relay ([`crate::relay`]).
pub(crate) fn accept_loop(
    listener: TcpListener,
    senders: Vec<Sender<TcpStream>>,
    wakers: Vec<Option<Waker>>,
    group: Arc<ReuseportGroup>,
    stats: Arc<LbStats>,
    shutdown: Arc<AtomicBool>,
) {
    let local = listener.local_addr().expect("bound");
    let epoch = std::time::Instant::now();
    let mut waiter = AcceptWaiter::new(&listener);
    let mut pending: Vec<TcpStream> = Vec::with_capacity(ACCEPT_BURST);
    let mut hashes: Vec<u32> = Vec::with_capacity(ACCEPT_BURST);
    let mut outcomes: Vec<DispatchOutcome> = Vec::with_capacity(ACCEPT_BURST);
    while !shutdown.load(Ordering::SeqCst) {
        // Drain whatever the kernel has queued, up to one burst: under
        // load this amortises the map-registry resolution and bitmap load
        // over the whole burst; when idle it degrades to per-connection
        // dispatch (batch of one).
        pending.clear();
        hashes.clear();
        while pending.len() < ACCEPT_BURST {
            match listener.accept() {
                Ok((stream, peer)) => {
                    hashes.push(flow_hash(&peer, &local));
                    pending.push(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => return,
            }
        }
        if pending.is_empty() {
            waiter.wait();
            continue;
        }
        outcomes.clear();
        group.dispatch_batch(&hashes, &mut outcomes);
        hermes_trace::trace_event!(
            epoch.elapsed().as_nanos() as u64,
            hermes_trace::EventKind::AcceptBurst,
            hermes_trace::KERNEL_LANE,
            pending.len(),
            outcomes.iter().filter(|o| o.is_directed()).count()
        );
        hermes_trace::trace_count!(hermes_trace::CounterId::AcceptBursts);
        hermes_trace::trace_count!(hermes_trace::CounterId::AcceptedConns, pending.len());
        for (stream, out) in pending.drain(..).zip(&outcomes) {
            let worker = match *out {
                DispatchOutcome::Directed(w) => {
                    stats.directed.fetch_add(1, Ordering::Relaxed);
                    w
                }
                DispatchOutcome::Fallback(w) => {
                    stats.fallback.fetch_add(1, Ordering::Relaxed);
                    w
                }
            };
            // A full worker queue applies backpressure by blocking the
            // acceptor — the accept-queue semantics of the kernel.
            if senders[worker].send(stream).is_err() {
                return; // workers gone: shutting down
            }
            // Reactor workers sleep in epoll_wait: ring their eventfd so
            // the hand-off is picked up now, not at the next idle timeout.
            if let Some(w) = &wakers[worker] {
                w.wake();
            }
        }
    }
}

/// The sharded "kernel": identical burst shape to [`accept_loop`], but the
/// two-level program picks group then worker, and each decision is recorded
/// as a `GroupDispatch` flight-recorder event.
fn accept_loop_sharded(
    listener: TcpListener,
    senders: Vec<Sender<TcpStream>>,
    group: Arc<GroupedReuseportGroup>,
    stats: Arc<LbStats>,
    shutdown: Arc<AtomicBool>,
) {
    let local = listener.local_addr().expect("bound");
    let epoch = std::time::Instant::now();
    let mut waiter = AcceptWaiter::new(&listener);
    let group_size = group.group_size();
    let mut pending: Vec<TcpStream> = Vec::with_capacity(ACCEPT_BURST);
    let mut hashes: Vec<u32> = Vec::with_capacity(ACCEPT_BURST);
    let mut outcomes: Vec<hermes_ebpf::GroupedOutcome> = Vec::with_capacity(ACCEPT_BURST);
    while !shutdown.load(Ordering::SeqCst) {
        pending.clear();
        hashes.clear();
        while pending.len() < ACCEPT_BURST {
            match listener.accept() {
                Ok((stream, peer)) => {
                    hashes.push(flow_hash(&peer, &local));
                    pending.push(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => return,
            }
        }
        if pending.is_empty() {
            waiter.wait();
            continue;
        }
        outcomes.clear();
        group.dispatch_batch(&hashes, &mut outcomes);
        let now = epoch.elapsed().as_nanos() as u64;
        hermes_trace::trace_event!(
            now,
            hermes_trace::EventKind::AcceptBurst,
            hermes_trace::KERNEL_LANE,
            pending.len(),
            outcomes.iter().filter(|o| o.directed).count()
        );
        hermes_trace::trace_count!(hermes_trace::CounterId::AcceptBursts);
        hermes_trace::trace_count!(hermes_trace::CounterId::AcceptedConns, pending.len());
        hermes_trace::trace_count!(hermes_trace::CounterId::GroupDispatches, pending.len());
        for ((stream, out), &hash) in pending.drain(..).zip(&outcomes).zip(&hashes) {
            let worker = out.global(group_size);
            if out.directed {
                stats.directed.fetch_add(1, Ordering::Relaxed);
            } else {
                stats.fallback.fetch_add(1, Ordering::Relaxed);
            }
            hermes_trace::trace_event!(
                now,
                hermes_trace::EventKind::GroupDispatch,
                hermes_trace::KERNEL_LANE,
                hash,
                ((out.group as u64) << 32) | worker as u64
            );
            if senders[worker].send(stream).is_err() {
                return; // workers gone: shutting down
            }
        }
    }
}

/// The kernel-precomputed 4-tuple hash, from the socket addresses.
pub(crate) fn flow_hash(peer: &SocketAddr, local: &SocketAddr) -> u32 {
    let ip_bits = |a: &SocketAddr| match a.ip() {
        std::net::IpAddr::V4(v4) => u32::from(v4),
        std::net::IpAddr::V6(v6) => {
            let o = v6.octets();
            u32::from_be_bytes([o[12], o[13], o[14], o[15]])
        }
    };
    FlowKey::new(ip_bits(peer), peer.port(), ip_bits(local), local.port()).hash()
}

/// One worker: Fig. 9's loop over a socket channel. `id` indexes stats
/// (global worker id); `lane` is the flight-recorder lane (equal to `id`
/// flat, `grouped_lane(..)` sharded).
fn worker_loop<T: SyncTarget>(
    id: usize,
    lane: u32,
    rx: Receiver<TcpStream>,
    mut session: WorkerSession<T>,
    mut proxy: Proxy,
    stats: Arc<LbStats>,
    shutdown: Arc<AtomicBool>,
) {
    let epoch = std::time::Instant::now();
    let now_ns = move || epoch.elapsed().as_nanos() as u64;
    loop {
        session.loop_top(now_ns());
        match rx.recv_timeout(Duration::from_millis(5)) {
            Ok(stream) => {
                session.events_fetched(1);
                session.conn_opened();
                stats.accepted[id].fetch_add(1, Ordering::Relaxed);
                hermes_trace::trace_event!(
                    now_ns(),
                    hermes_trace::EventKind::ConnOpen,
                    lane,
                    stats.accepted[id].load(Ordering::Relaxed),
                    0u64
                );
                serve_connection(stream, &mut proxy, &stats);
                session.event_handled();
                session.conn_closed();
                hermes_trace::trace_event!(
                    now_ns(),
                    hermes_trace::EventKind::ConnClose,
                    lane,
                    stats.requests.load(Ordering::Relaxed),
                    0u64
                );
                hermes_trace::trace_count!(hermes_trace::CounterId::ProxiedConns);
            }
            Err(RecvTimeoutError::Timeout) => {
                session.events_fetched(0);
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
        let decision = session.schedule_only(now_ns());
        session.sync_only(decision.bitmap);
        if shutdown.load(Ordering::SeqCst) && rx.is_empty() {
            return;
        }
    }
}

/// Run-to-completion connection handling: keep-alive until EOF, error, or
/// idle timeout.
fn serve_connection(mut stream: TcpStream, proxy: &mut Proxy, stats: &LbStats) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_nodelay(true);
    let mut buf = BytesMut::with_capacity(4096);
    let mut chunk = [0u8; 4096];
    // Hard per-connection deadline: a client trickling bytes just under
    // the read timeout must not pin this worker (slow-loris) or stall
    // shutdown joins indefinitely.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        if std::time::Instant::now() >= deadline {
            return;
        }
        // Serve every complete request already buffered. Only *protocol*
        // errors (400: the byte stream is unparseable) close the
        // connection; routing misses (404) and upstream trouble (5xx) are
        // valid HTTP exchanges and keep-alive continues.
        while let Some(response) = proxy.handle_bytes(&mut buf) {
            let protocol_error = response.starts_with(b"HTTP/1.1 400");
            if stream.write_all(&response).is_err() {
                return;
            }
            stats.requests.fetch_add(1, Ordering::Relaxed);
            if protocol_error {
                return;
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // client closed
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return, // timeout or reset: drop the connection
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proxy::EchoUpstream;
    use crate::router::{Router, Rule};

    fn demo_proxy() -> Proxy {
        let mut router = Router::new();
        router.add_rule(Rule::new().path_prefix("/api").pool("api"));
        router.add_rule(Rule::new().pool("web"));
        let mut p = Proxy::new(router);
        p.add_pool(
            "api",
            vec![
                Box::new(EchoUpstream::new("api-0")),
                Box::new(EchoUpstream::new("api-1")),
            ],
        );
        p.add_pool("web", vec![Box::new(EchoUpstream::new("web-0"))]);
        p
    }

    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        out
    }

    #[test]
    fn serves_real_http_over_tcp() {
        let lb = TcpLb::start("127.0.0.1:0", 3, demo_proxy()).expect("bind");
        let addr = lb.local_addr();
        let resp = http_get(addr, "/api/users");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.contains("GET /api/users via api-"));
        let resp = http_get(addr, "/index.html");
        assert!(resp.contains("via web-0"));
        lb.shutdown();
    }

    #[test]
    fn many_clients_spread_across_workers() {
        let lb = TcpLb::start("127.0.0.1:0", 4, demo_proxy()).expect("bind");
        let addr = lb.local_addr();
        std::thread::sleep(Duration::from_millis(15)); // first bitmaps
        let clients: Vec<_> = (0..32)
            .map(|i| {
                std::thread::spawn(move || {
                    let resp = http_get(addr, &format!("/c{i}"));
                    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }
        let stats = Arc::clone(lb.stats());
        lb.shutdown();
        let accepted: Vec<u64> = stats
            .accepted
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect();
        assert_eq!(accepted.iter().sum::<u64>(), 32);
        assert_eq!(stats.requests.load(Ordering::Relaxed), 32);
        // No worker takes everything (Hermes spreads; loopback hashing
        // variance allows some skew).
        assert!(
            *accepted.iter().max().unwrap() < 32,
            "one worker took all: {accepted:?}"
        );
    }

    #[test]
    fn sharded_lb_serves_and_spreads_across_groups() {
        // 2 groups × 2 workers: small enough for the test host, but every
        // sharded code path (per-group WSTs, grouped program, global
        // flattening) is exercised.
        let lb = TcpLb::start_sharded("127.0.0.1:0", 2, 2, demo_proxy()).expect("bind");
        let addr = lb.local_addr();
        std::thread::sleep(Duration::from_millis(15)); // first bitmaps
        for i in 0..24 {
            let resp = http_get(addr, &format!("/api/s{i}"));
            assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        }
        let stats = Arc::clone(lb.stats());
        lb.shutdown();
        let accepted: Vec<u64> = stats
            .accepted
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect();
        assert_eq!(accepted.len(), 4, "stats indexed by global worker id");
        assert_eq!(accepted.iter().sum::<u64>(), 24);
        assert_eq!(stats.requests.load(Ordering::Relaxed), 24);
        assert!(
            *accepted.iter().max().unwrap() < 24,
            "one worker took all: {accepted:?}"
        );
    }

    #[test]
    #[should_panic(expected = "1..=64 groups")]
    fn sharded_lb_rejects_zero_groups() {
        let _ = TcpLb::start_sharded("127.0.0.1:0", 0, 4, demo_proxy());
    }

    #[test]
    fn keep_alive_serves_pipelined_requests() {
        let lb = TcpLb::start("127.0.0.1:0", 2, demo_proxy()).expect("bind");
        let mut s = TcpStream::connect(lb.local_addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        write!(s, "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n").unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        assert_eq!(out.matches("HTTP/1.1 200 OK").count(), 2, "{out}");
        lb.shutdown();
    }

    #[test]
    fn malformed_requests_get_400_and_close() {
        let lb = TcpLb::start("127.0.0.1:0", 2, demo_proxy()).expect("bind");
        let mut s = TcpStream::connect(lb.local_addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        write!(s, "garbage garbage garbage\r\n\r\n").unwrap();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        lb.shutdown();
    }
}
