//! The global flight recorder: one ring per lane plus the counter registry.
//!
//! Lanes 0..=63 belong to workers (one producer each — the worker thread).
//! Lane [`KERNEL_LANE`] carries the acceptor/dispatch path and lane
//! [`CONTROL_LANE`] carries scheduler/driver events. Events whose lane id
//! exceeds the table are clamped into the control lane rather than dropped,
//! so a misconfigured worker id can never index out of bounds.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use crate::counters::{CounterId, CounterRegistry};
use crate::record::{EventKind, TraceRecord};
use crate::ring::{TraceRing, DEFAULT_RING_CAPACITY};

/// Worker lanes 0..MAX_WORKER_LANES map 1:1 to Hermes worker ids.
pub const MAX_WORKER_LANES: usize = 64;
/// Lane for the kernel-side path: accept bursts, dispatch decisions.
pub const KERNEL_LANE: u32 = 64;
/// Lane for control-plane events: scheduler passes, pacer misses.
pub const CONTROL_LANE: u32 = 65;
/// Total lane count.
pub const LANES: usize = MAX_WORKER_LANES + 2;

/// A multi-lane flight recorder.
pub struct Tracer {
    lanes: Vec<TraceRing>,
    counters: CounterRegistry,
    /// Runtime switch layered under the compile-time `trace` feature, so one
    /// binary can compare enabled-vs-disabled behaviour (the determinism
    /// suite flips it). Recording starts on.
    on: AtomicBool,
}

impl Tracer {
    /// Recorder with `DEFAULT_RING_CAPACITY` records per lane.
    pub fn new() -> Self {
        Self::with_ring_capacity(DEFAULT_RING_CAPACITY)
    }

    /// Recorder with an explicit per-lane capacity (power of two).
    pub fn with_ring_capacity(capacity: usize) -> Self {
        Self {
            lanes: (0..LANES)
                .map(|_| TraceRing::with_capacity(capacity))
                .collect(),
            counters: CounterRegistry::new(),
            on: AtomicBool::new(true),
        }
    }

    /// Whether the recorder is currently accepting events.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.on.load(Ordering::Relaxed)
    }

    /// Flip the runtime recording switch.
    pub fn set_enabled(&self, on: bool) {
        self.on.store(on, Ordering::Relaxed);
    }

    /// Record one event on `lane` (clamped into the lane table).
    #[inline]
    pub fn emit(&self, ts: u64, kind: EventKind, lane: u32, a: u64, b: u64) {
        if !self.is_enabled() {
            return;
        }
        let idx = (lane as usize).min(LANES - 1);
        self.lanes[idx].push(TraceRecord {
            ts,
            kind,
            worker: lane,
            a,
            b,
        });
    }

    /// Add `n` to a monotonic counter.
    #[inline]
    pub fn counter_add(&self, id: CounterId, n: u64) {
        if !self.is_enabled() {
            return;
        }
        self.counters.add(id, n);
    }

    /// Ratchet a max-style counter.
    #[inline]
    pub fn counter_max(&self, id: CounterId, v: u64) {
        if !self.is_enabled() {
            return;
        }
        self.counters.max(id, v);
    }

    /// Current counter value.
    pub fn counter_get(&self, id: CounterId) -> u64 {
        self.counters.get(id)
    }

    /// Snapshot of every counter.
    pub fn counters_snapshot(&self) -> [(CounterId, u64); CounterId::COUNT] {
        self.counters.snapshot()
    }

    /// Total events dropped across all lanes because a ring was full.
    pub fn dropped_events(&self) -> u64 {
        self.lanes.iter().map(TraceRing::dropped).sum()
    }

    /// Drain every lane and return the records sorted by timestamp (stable,
    /// so per-lane order is preserved among equal timestamps, and lanes tie-
    /// break in lane order — deterministic for sim-time traces).
    pub fn drain(&self) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        for lane in &self.lanes {
            lane.drain_into(&mut out);
        }
        out.sort_by(|x, y| x.ts.cmp(&y.ts).then(x.worker.cmp(&y.worker)));
        out
    }

    /// Discard buffered records, zero counters and drop accounting, and
    /// re-enable recording. Used between comparison runs.
    pub fn reset(&self) {
        for lane in &self.lanes {
            lane.clear();
        }
        self.counters.reset();
        self.set_enabled(true);
    }

    /// Direct access to one lane's ring (benchmarks).
    pub fn lane(&self, lane: u32) -> &TraceRing {
        &self.lanes[(lane as usize).min(LANES - 1)]
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("lanes", &self.lanes.len())
            .field("enabled", &self.is_enabled())
            .field("dropped", &self.dropped_events())
            .finish()
    }
}

/// Map a grouped worker onto a flight-recorder lane: `group * group_size +
/// local`, the flattened global worker id. Deployments wider than
/// [`MAX_WORKER_LANES`] workers (e.g. 256 workers in 4 groups) overflow the
/// lane table; overflowing workers share [`CONTROL_LANE`], and each such
/// mapping bumps [`CounterId::TraceLaneOverflows`] so the aliasing is
/// visible in the counter export rather than silent.
#[inline]
pub fn grouped_lane(group: usize, group_size: usize, local: usize) -> u32 {
    let global = group * group_size + local;
    if global < MAX_WORKER_LANES {
        global as u32
    } else {
        crate::trace_count!(CounterId::TraceLaneOverflows);
        CONTROL_LANE
    }
}

/// Map a fleet device onto a stable flight-recorder lane derived from the
/// *device index*, never the OS thread that happens to run the device. Under
/// the cluster work pool, devices migrate across pool threads between runs;
/// keying lanes by thread id would shuffle every device's events across
/// lanes from run to run (and alias devices sharing a thread). Keying by
/// device index keeps the trace layout deterministic at any thread count.
/// Fleets wider than [`MAX_WORKER_LANES`] devices clamp to [`CONTROL_LANE`]
/// and bump [`CounterId::TraceLaneOverflows`], the same overflow policy as
/// [`grouped_lane`].
#[inline]
pub fn device_lane(device: usize) -> u32 {
    if device < MAX_WORKER_LANES {
        device as u32
    } else {
        crate::trace_count!(CounterId::TraceLaneOverflows);
        CONTROL_LANE
    }
}

static GLOBAL: OnceLock<Tracer> = OnceLock::new();

/// The process-wide recorder, created on first use.
pub fn global() -> &'static Tracer {
    GLOBAL.get_or_init(Tracer::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_clamp_instead_of_panicking() {
        let t = Tracer::with_ring_capacity(8);
        t.emit(1, EventKind::Dispatch, 9999, 0, 0);
        let recs = t.drain();
        assert_eq!(recs.len(), 1);
        // The original lane id is preserved in the record even when clamped.
        assert_eq!(recs[0].worker, 9999);
    }

    #[test]
    fn device_lane_is_stable_across_threads() {
        // The lane must be a pure function of the device index: two
        // different OS threads asking for the same device get the same
        // lane, and distinct in-range devices never alias.
        let main_lanes: Vec<u32> = (0..MAX_WORKER_LANES).map(device_lane).collect();
        let other_lanes = std::thread::spawn(|| {
            (0..MAX_WORKER_LANES)
                .map(device_lane)
                .collect::<Vec<u32>>()
        })
        .join()
        .unwrap();
        assert_eq!(main_lanes, other_lanes);
        for (d, &lane) in main_lanes.iter().enumerate() {
            assert_eq!(lane, d as u32);
        }
        let mut sorted = main_lanes.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), MAX_WORKER_LANES, "in-range lanes alias");
    }

    #[test]
    fn device_lane_overflow_clamps_to_control() {
        assert_eq!(device_lane(MAX_WORKER_LANES), CONTROL_LANE);
        assert_eq!(device_lane(362), CONTROL_LANE);
        assert_eq!(device_lane(usize::MAX), CONTROL_LANE);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let t = Tracer::with_ring_capacity(8);
        t.set_enabled(false);
        t.emit(1, EventKind::Dispatch, 0, 0, 0);
        t.counter_add(CounterId::SimSyns, 5);
        assert!(t.drain().is_empty());
        assert_eq!(t.counter_get(CounterId::SimSyns), 0);
        t.set_enabled(true);
        t.emit(2, EventKind::Dispatch, 0, 0, 0);
        assert_eq!(t.drain().len(), 1);
    }

    #[test]
    fn drain_sorts_by_timestamp_then_lane() {
        let t = Tracer::with_ring_capacity(8);
        t.emit(30, EventKind::SimWake, 2, 0, 0);
        t.emit(10, EventKind::SimSyn, KERNEL_LANE, 0, 0);
        t.emit(20, EventKind::SimWake, 1, 0, 0);
        t.emit(10, EventKind::SchedDecision, CONTROL_LANE, 0, 0);
        let recs = t.drain();
        let got: Vec<(u64, u32)> = recs.iter().map(|r| (r.ts, r.worker)).collect();
        assert_eq!(
            got,
            vec![(10, KERNEL_LANE), (10, CONTROL_LANE), (20, 1), (30, 2)]
        );
    }

    #[test]
    fn reset_clears_records_counters_and_drops() {
        let t = Tracer::with_ring_capacity(2);
        for i in 0..5 {
            t.emit(i, EventKind::Dispatch, 0, 0, 0);
        }
        t.counter_add(CounterId::SimSyns, 1);
        assert!(t.dropped_events() > 0);
        t.reset();
        assert_eq!(t.dropped_events(), 0);
        assert!(t.drain().is_empty());
        assert_eq!(t.counter_get(CounterId::SimSyns), 0);
    }
}
