//! Atomics facade for the model-checked structures in this crate.
//!
//! Normal builds re-export `std::sync::atomic`; building with
//! `RUSTFLAGS="--cfg loom"` swaps in loom's model-checked atomics so the
//! `loom_tests` modules can exhaustively explore interleavings of the SPSC
//! ring. Loom is deliberately **not** a listed dependency (the workspace
//! builds offline); the loom lane in `scripts/ci.sh` documents how to wire
//! it up locally. Everything here is `pub(crate)` so the facade never leaks
//! into the public API.

#[cfg(loom)]
pub(crate) use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{AtomicU64, Ordering};
