//! Fixed-size binary trace records and the event-kind vocabulary.
//!
//! A record is 32 bytes: a 64-bit timestamp (runtime clock nanoseconds, or
//! simulated nanoseconds inside `hermes-simnet` so traces are deterministic),
//! a 16-bit event kind, a 32-bit worker/lane id, and two 64-bit payload
//! words whose meaning depends on the kind. Records are stored in the ring
//! as four `u64` words — timestamp, packed kind+worker, payload `a`, payload
//! `b` — so a push is four relaxed atomic stores and a cursor bump.

/// What happened. The discriminant is the on-wire `u16` stored in the ring.
///
/// Payload conventions (`a`, `b`) are documented per variant; timestamps are
/// nanoseconds on the emitting clock (monotonic runtime clock, or sim time).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u16)]
pub enum EventKind {
    /// Decoder fallback for a kind value this build does not know.
    Unknown = 0,
    /// One cascading-filter stage ran. `a` = `stage_index << 32 | stage_code`
    /// (0 = Time, 1 = Connections, 2 = PendingEvents), `b` = surviving bitmap.
    SchedStage = 1,
    /// A full scheduler pass finished. `a` = admitted bitmap, `b` = alive bitmap.
    SchedDecision = 2,
    /// A worker published its admit bitmap to the kernel map.
    /// `a` = bitmap, `b` = WST epoch at publish.
    BitmapPublish = 3,
    /// A dispatch program was loaded/verified. `a` = exec tier code
    /// (0 = Checked, 1 = Fast, 2 = Compiled, 3 = Jit), `b` = instruction
    /// count.
    VmLoad = 4,
    /// A batch of flows went through `dispatch_batch`.
    /// `a` = batch length, `b` = directed (non-fallback) count.
    DispatchBatch = 5,
    /// A single flow was dispatched. `a` = flow hash, `b` = chosen worker.
    Dispatch = 6,
    /// The lb acceptor drained one accept burst.
    /// `a` = burst length, `b` = directed count.
    AcceptBurst = 7,
    /// A proxied connection was handed to a worker. `a` = connection token.
    ConnOpen = 8,
    /// A proxied connection finished. `a` = connection token, `b` = requests served.
    ConnClose = 9,
    /// A `Pacer` deadline was already in the past on entry.
    /// `a` = overshoot in nanoseconds, `b` = total misses so far.
    PacerMiss = 10,
    /// Simulated SYN arrival. `a` = connection id, `b` = flow hash.
    SimSyn = 11,
    /// Same-timestamp SYN burst drained as one batch.
    /// `a` = burst length, `b` = first connection id.
    SimSynBurst = 12,
    /// Simulated worker wake (epoll return). `a` = events fetched, `b` = blocked ns.
    SimWake = 13,
    /// Simulated dispatch decision. `a` = flow hash, `b` = chosen worker.
    SimDispatch = 14,
    /// Grouped (two-level) dispatch decision.
    /// `a` = flow hash, `b` = `group << 32 | global_worker`.
    GroupDispatch = 15,
    /// A certified program was lowered to native code by the JIT.
    /// `a` = emitted code size in bytes, `b` = basic blocks lowered.
    JitLoad = 16,
    /// A backend entered service (`Healthy`/`Slow`).
    /// `a` = backend id, `b` = published table version.
    BackendUp = 17,
    /// A backend started draining: serves in-flight, admits nothing new.
    /// `a` = backend id, `b` = published table version.
    BackendDrain = 18,
    /// A backend went down: in-flight connections must retry elsewhere.
    /// `a` = backend id, `b` = published table version.
    BackendDown = 19,
    /// A relay reactor worker woke from `epoll_wait` with work to do.
    /// `a` = ready fd events returned, `b` = relays pumped on this wake.
    RelayWakeup = 20,
}

impl EventKind {
    /// Every kind the decoder knows, in discriminant order (excluding
    /// [`EventKind::Unknown`]). Drives the per-kind summary table.
    pub const ALL: [EventKind; 20] = [
        EventKind::SchedStage,
        EventKind::SchedDecision,
        EventKind::BitmapPublish,
        EventKind::VmLoad,
        EventKind::DispatchBatch,
        EventKind::Dispatch,
        EventKind::AcceptBurst,
        EventKind::ConnOpen,
        EventKind::ConnClose,
        EventKind::PacerMiss,
        EventKind::SimSyn,
        EventKind::SimSynBurst,
        EventKind::SimWake,
        EventKind::SimDispatch,
        EventKind::GroupDispatch,
        EventKind::JitLoad,
        EventKind::BackendUp,
        EventKind::BackendDrain,
        EventKind::BackendDown,
        EventKind::RelayWakeup,
    ];

    /// Decode a wire discriminant, mapping unknown values to
    /// [`EventKind::Unknown`] rather than failing the drain.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => EventKind::SchedStage,
            2 => EventKind::SchedDecision,
            3 => EventKind::BitmapPublish,
            4 => EventKind::VmLoad,
            5 => EventKind::DispatchBatch,
            6 => EventKind::Dispatch,
            7 => EventKind::AcceptBurst,
            8 => EventKind::ConnOpen,
            9 => EventKind::ConnClose,
            10 => EventKind::PacerMiss,
            11 => EventKind::SimSyn,
            12 => EventKind::SimSynBurst,
            13 => EventKind::SimWake,
            14 => EventKind::SimDispatch,
            15 => EventKind::GroupDispatch,
            16 => EventKind::JitLoad,
            17 => EventKind::BackendUp,
            18 => EventKind::BackendDrain,
            19 => EventKind::BackendDown,
            20 => EventKind::RelayWakeup,
            _ => EventKind::Unknown,
        }
    }

    /// Stable dotted name used in exports (`sched.stage`, `sim.syn`, ...).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Unknown => "unknown",
            EventKind::SchedStage => "sched.stage",
            EventKind::SchedDecision => "sched.decision",
            EventKind::BitmapPublish => "bitmap.publish",
            EventKind::VmLoad => "vm.load",
            EventKind::DispatchBatch => "dispatch.batch",
            EventKind::Dispatch => "dispatch.one",
            EventKind::AcceptBurst => "lb.accept_burst",
            EventKind::ConnOpen => "lb.conn_open",
            EventKind::ConnClose => "lb.conn_close",
            EventKind::PacerMiss => "pacer.miss",
            EventKind::SimSyn => "sim.syn",
            EventKind::SimSynBurst => "sim.syn_burst",
            EventKind::SimWake => "sim.wake",
            EventKind::SimDispatch => "sim.dispatch",
            EventKind::GroupDispatch => "dispatch.group",
            EventKind::JitLoad => "vm.jit_load",
            EventKind::BackendUp => "backend.up",
            EventKind::BackendDrain => "backend.drain",
            EventKind::BackendDown => "backend.down",
            EventKind::RelayWakeup => "relay.wakeup",
        }
    }
}

/// One decoded flight-recorder event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Nanoseconds on the emitting clock (runtime monotonic or sim time).
    pub ts: u64,
    /// Event kind.
    pub kind: EventKind,
    /// Worker id / lane the event belongs to.
    pub worker: u32,
    /// First payload word; meaning depends on `kind`.
    pub a: u64,
    /// Second payload word; meaning depends on `kind`.
    pub b: u64,
}

impl TraceRecord {
    /// Pack kind + worker into the ring's second word.
    #[inline]
    pub(crate) fn meta(&self) -> u64 {
        ((self.kind as u16 as u64) << 32) | self.worker as u64
    }

    /// Rebuild a record from the ring's four words.
    #[inline]
    pub(crate) fn from_words(ts: u64, meta: u64, a: u64, b: u64) -> Self {
        Self {
            ts,
            kind: EventKind::from_u16(((meta >> 32) & 0xffff) as u16),
            worker: meta as u32,
            a,
            b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_round_trips_kind_and_worker() {
        let r = TraceRecord {
            ts: 42,
            kind: EventKind::SimWake,
            worker: 0xdead_beef,
            a: 1,
            b: 2,
        };
        let back = TraceRecord::from_words(r.ts, r.meta(), r.a, r.b);
        assert_eq!(back, r);
    }

    #[test]
    fn unknown_kinds_decode_to_unknown() {
        assert_eq!(EventKind::from_u16(999), EventKind::Unknown);
        let r = TraceRecord::from_words(0, (999u64) << 32, 0, 0);
        assert_eq!(r.kind, EventKind::Unknown);
    }

    #[test]
    fn all_kinds_round_trip_and_have_unique_names() {
        let mut names = std::collections::HashSet::new();
        for k in EventKind::ALL {
            assert_eq!(EventKind::from_u16(k as u16), k);
            assert!(names.insert(k.name()), "duplicate name {}", k.name());
        }
    }
}
