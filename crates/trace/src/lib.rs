//! Lock-free flight-recorder tracing for the Hermes dispatch pipeline.
//!
//! Hermes's premise is that userspace knows best: workers export loop-entry
//! timestamps, pending-event counts and connection counts into the WST so
//! the scheduler can explain every admit/reject (Algorithm 1) and the eBPF
//! program can honor the decision (Algorithm 2). This crate makes those
//! decisions *observable* in a live run without perturbing them:
//!
//! * [`TraceRing`] — per-lane SPSC rings of fixed-size 32-byte binary
//!   records (`u64` timestamp, `u16` kind, `u32` worker id, 2×`u64`
//!   payload). A push is a bounds check plus four relaxed stores and a
//!   release cursor bump; a full ring drops (saturating counter), never
//!   blocks.
//! * [`CounterId`] / cache-line-padded monotonic counters for rates that
//!   would flood the rings (per-dispatch tier tallies, snapshot hits, ...).
//! * [`trace_event!`] / [`trace_count!`] / [`trace_count_max!`] — the only
//!   way instrumented crates emit. With the `trace` cargo feature **off**
//!   (the default) [`ENABLED`] is `false` and the macros expand to
//!   `if false { .. }`: arguments still type-check, then the whole call is
//!   dead-code eliminated — the hot paths pay literally nothing. With the
//!   feature **on**, each macro is one runtime-switch branch plus the ring
//!   write (target ≤ ~25 ns; see `results/BENCH_trace.json`).
//! * [`chrome_json`] / [`summary`] — drain/export into chrome://tracing
//!   JSON or an ASCII per-kind table.
//!
//! Determinism: tracing observes, never steers. Simnet emits with simulated
//! time, so a traced run produces byte-identical reports *and* byte-identical
//! traces across repeats; the `trace_determinism` suite in `hermes-simnet`
//! enforces the report half of that contract with the recorder both on and
//! off.

mod counters;
mod export;
mod record;
mod ring;
mod sync;
mod tracer;

pub use counters::{CounterId, CounterRegistry};
pub use export::{chrome_json, summary};
pub use record::{EventKind, TraceRecord};
pub use ring::{TraceRing, DEFAULT_RING_CAPACITY};
pub use tracer::{
    device_lane, global, grouped_lane, Tracer, CONTROL_LANE, KERNEL_LANE, LANES, MAX_WORKER_LANES,
};

/// Compile-time master switch. `true` iff this crate was built with the
/// `trace` cargo feature. The macros below branch on this constant, so with
/// the feature off every instrumentation site compiles to nothing.
///
/// Forced off under `--cfg loom` so model-checked structures (the SPSC ring,
/// `hermes-core`'s `SelMap`) never drag the global recorder's non-loom
/// atomics into a loom model.
pub const ENABLED: bool = cfg!(feature = "trace") && !cfg!(loom);

/// Record one event on the global recorder.
#[inline]
pub fn emit(ts: u64, kind: EventKind, lane: u32, a: u64, b: u64) {
    global().emit(ts, kind, lane, a, b);
}

/// Add `n` to a global monotonic counter.
#[inline]
pub fn counter_add(id: CounterId, n: u64) {
    global().counter_add(id, n);
}

/// Ratchet a global max-style counter.
#[inline]
pub fn counter_max(id: CounterId, v: u64) {
    global().counter_max(id, v);
}

/// Current value of a global counter.
pub fn counter_get(id: CounterId) -> u64 {
    global().counter_get(id)
}

/// Snapshot every global counter.
pub fn counters_snapshot() -> [(CounterId, u64); CounterId::COUNT] {
    global().counters_snapshot()
}

/// Flip the global runtime recording switch (no-op semantics when the
/// `trace` feature is off: nothing records either way).
pub fn set_enabled(on: bool) {
    global().set_enabled(on);
}

/// Whether the global recorder currently accepts events. Always `false` in
/// practice when [`ENABLED`] is `false` because no macro ever emits.
pub fn is_enabled() -> bool {
    ENABLED && global().is_enabled()
}

/// Drain the global recorder: all lanes, sorted by (timestamp, lane).
pub fn drain() -> Vec<TraceRecord> {
    global().drain()
}

/// Total events dropped by full rings on the global recorder.
pub fn dropped_events() -> u64 {
    global().dropped_events()
}

/// Clear the global recorder's records, counters and drop accounting, and
/// re-enable recording.
pub fn reset() {
    global().reset();
}

/// Record a flight-recorder event: `trace_event!(ts, kind, lane, a, b)`.
///
/// `ts`, `lane`, `a`, `b` are cast with `as u64`/`as u32`, so any integer
/// type goes. Compiles to nothing when the `trace` feature is off.
#[macro_export]
macro_rules! trace_event {
    ($ts:expr, $kind:expr, $lane:expr, $a:expr, $b:expr) => {
        if $crate::ENABLED {
            $crate::emit(
                ($ts) as u64,
                $kind,
                ($lane) as u32,
                ($a) as u64,
                ($b) as u64,
            );
        }
    };
}

/// Bump a monotonic counter: `trace_count!(id)` or `trace_count!(id, n)`.
/// Compiles to nothing when the `trace` feature is off.
#[macro_export]
macro_rules! trace_count {
    ($id:expr) => {
        $crate::trace_count!($id, 1u64)
    };
    ($id:expr, $n:expr) => {
        if $crate::ENABLED {
            $crate::counter_add($id, ($n) as u64);
        }
    };
}

/// Ratchet a max-style counter: `trace_count_max!(id, v)`.
/// Compiles to nothing when the `trace` feature is off.
#[macro_export]
macro_rules! trace_count_max {
    ($id:expr, $v:expr) => {
        if $crate::ENABLED {
            $crate::counter_max($id, ($v) as u64);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_tracks_the_cargo_feature() {
        assert_eq!(ENABLED, cfg!(feature = "trace") && !cfg!(loom));
    }

    #[test]
    fn macros_type_check_mixed_integer_widths() {
        // Must compile regardless of feature state; records only when on.
        let ts: u32 = 5;
        let lane: usize = 3;
        let a: u16 = 9;
        trace_event!(ts, EventKind::SimWake, lane, a, 0i64);
        trace_count!(CounterId::SimWakes);
        trace_count!(CounterId::SimWakes, 2u32);
        trace_count_max!(CounterId::PacerMaxOvershootNs, 77u128);
    }
}
