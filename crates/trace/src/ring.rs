//! Lock-free single-producer/single-consumer trace ring.
//!
//! Each lane of the recorder is one [`TraceRing`]: a power-of-two array of
//! 4-word slots with a producer cursor (`head`), a consumer cursor (`tail`)
//! and a saturating drop counter. A push is a bounds check, four relaxed
//! stores and a release cursor bump — it never blocks, never allocates, and
//! when the consumer has fallen a full capacity behind it drops the event
//! and bumps the counter instead of waiting.
//!
//! The slots are plain `AtomicU64` words rather than a `&mut`-based ring so
//! that *accidental* concurrent producers (e.g. parallel tests sharing the
//! global recorder's control lane) stay memory-safe: the worst outcome is a
//! torn record, which the decoder tolerates via [`EventKind::Unknown`],
//! never undefined behaviour.

use crate::record::TraceRecord;
use crate::sync::{AtomicU64, Ordering};

/// Default per-lane capacity in records (32 KiB per lane).
pub const DEFAULT_RING_CAPACITY: usize = 4096;

const WORDS_PER_SLOT: usize = 4;

/// A fixed-capacity SPSC ring of [`TraceRecord`]s.
pub struct TraceRing {
    /// `capacity * 4` words: `[ts, kind<<32|worker, a, b]` per slot.
    words: Box<[AtomicU64]>,
    /// Slot-index mask (`capacity - 1`).
    mask: u64,
    /// Next sequence number to write (producer-owned).
    head: AtomicU64,
    /// Next sequence number to read (consumer-owned).
    tail: AtomicU64,
    /// Events discarded because the ring was full. Saturating.
    dropped: AtomicU64,
}

impl TraceRing {
    /// Ring holding `capacity` records. `capacity` must be a power of two.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(
            capacity.is_power_of_two() && capacity >= 2,
            "ring capacity must be a power of two >= 2, got {capacity}"
        );
        let words = (0..capacity * WORDS_PER_SLOT)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            words,
            mask: (capacity - 1) as u64,
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of records the ring can hold.
    pub fn capacity(&self) -> usize {
        (self.mask + 1) as usize
    }

    /// Records currently buffered (racy snapshot).
    pub fn len(&self) -> usize {
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        head.wrapping_sub(tail).min(self.mask + 1) as usize
    }

    /// Whether the ring is currently empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Append a record. Returns `false` (and bumps the drop counter) when
    /// the ring is full. Never blocks.
    #[inline]
    pub fn push(&self, r: TraceRecord) -> bool {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        if head.wrapping_sub(tail) > self.mask {
            // Full: drop, saturating so the counter never wraps to "clean".
            let d = self.dropped.load(Ordering::Relaxed);
            self.dropped.store(d.saturating_add(1), Ordering::Relaxed);
            return false;
        }
        let base = ((head & self.mask) as usize) * WORDS_PER_SLOT;
        self.words[base].store(r.ts, Ordering::Relaxed);
        self.words[base + 1].store(r.meta(), Ordering::Relaxed);
        self.words[base + 2].store(r.a, Ordering::Relaxed);
        self.words[base + 3].store(r.b, Ordering::Relaxed);
        // Release the slot words to the consumer in one cursor bump.
        self.head.store(head.wrapping_add(1), Ordering::Release);
        true
    }

    /// Move every buffered record into `out`, oldest first.
    pub fn drain_into(&self, out: &mut Vec<TraceRecord>) {
        let head = self.head.load(Ordering::Acquire);
        let mut tail = self.tail.load(Ordering::Relaxed);
        // Bound the walk to one capacity in case a misbehaving producer
        // advanced head past the SPSC full state while we drain.
        let cap = self.mask + 1;
        if head.wrapping_sub(tail) > cap {
            tail = head.wrapping_sub(cap);
        }
        while tail != head {
            let base = ((tail & self.mask) as usize) * WORDS_PER_SLOT;
            let ts = self.words[base].load(Ordering::Relaxed);
            let meta = self.words[base + 1].load(Ordering::Relaxed);
            let a = self.words[base + 2].load(Ordering::Relaxed);
            let b = self.words[base + 3].load(Ordering::Relaxed);
            out.push(TraceRecord::from_words(ts, meta, a, b));
            tail = tail.wrapping_add(1);
        }
        self.tail.store(tail, Ordering::Release);
    }

    /// Drop all buffered records and zero the drop counter (test/reset aid).
    pub fn clear(&self) {
        let head = self.head.load(Ordering::Acquire);
        self.tail.store(head, Ordering::Release);
        self.dropped.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(all(test, loom))]
mod loom_tests {
    //! Exhaustive interleaving checks for the SPSC protocol. These run only
    //! under `RUSTFLAGS="--cfg loom"` (see the loom lane in scripts/ci.sh);
    //! keep rings tiny (capacity 2) and op counts small so the state space
    //! stays tractable.
    use super::*;
    use crate::record::EventKind;
    use loom::sync::Arc;
    use loom::thread;

    fn rec(ts: u64) -> TraceRecord {
        TraceRecord {
            ts,
            kind: EventKind::Dispatch,
            worker: 7,
            a: ts * 2,
            b: ts * 3,
        }
    }

    /// Every interleaving of one producer pushing three records against a
    /// concurrently draining consumer: no record is ever torn (payload
    /// words always match the timestamp they were written with), accepted
    /// records drain in push order, and push + drop accounting is exact.
    #[test]
    fn spsc_push_drain_never_tears_and_loses_nothing() {
        loom::model(|| {
            let ring = Arc::new(TraceRing::with_capacity(2));
            let producer = {
                let ring = Arc::clone(&ring);
                thread::spawn(move || {
                    let mut pushed = 0u64;
                    for i in 1..=3u64 {
                        if ring.push(rec(i)) {
                            pushed += 1;
                        }
                    }
                    pushed
                })
            };
            let mut got = Vec::new();
            ring.drain_into(&mut got);
            let pushed = producer.join().unwrap();
            ring.drain_into(&mut got);
            for r in &got {
                assert!((1..=3).contains(&r.ts), "phantom record ts={}", r.ts);
                assert_eq!(r.a, r.ts * 2, "torn payload a for ts={}", r.ts);
                assert_eq!(r.b, r.ts * 3, "torn payload b for ts={}", r.ts);
            }
            for w in got.windows(2) {
                assert!(w[0].ts < w[1].ts, "records drained out of order");
            }
            assert_eq!(got.len() as u64, pushed, "accepted records must drain");
            assert_eq!(pushed + ring.dropped(), 3, "push/drop accounting");
        });
    }

    /// A full capacity-2 ring drops rather than blocks in every
    /// interleaving, and the drop counter never double-counts.
    #[test]
    fn full_ring_drop_accounting_is_exact_under_races() {
        loom::model(|| {
            let ring = Arc::new(TraceRing::with_capacity(2));
            assert!(ring.push(rec(1)));
            assert!(ring.push(rec(2)));
            let producer = {
                let ring = Arc::clone(&ring);
                thread::spawn(move || ring.push(rec(3)) as u64)
            };
            let mut got = Vec::new();
            ring.drain_into(&mut got);
            let pushed = 2 + producer.join().unwrap();
            ring.drain_into(&mut got);
            assert_eq!(got.len() as u64, pushed);
            assert_eq!(pushed + ring.dropped(), 3);
        });
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::record::EventKind;

    fn rec(ts: u64) -> TraceRecord {
        TraceRecord {
            ts,
            kind: EventKind::Dispatch,
            worker: 7,
            a: ts * 2,
            b: ts * 3,
        }
    }

    #[test]
    fn push_then_drain_preserves_order_and_contents() {
        let ring = TraceRing::with_capacity(8);
        for i in 0..5 {
            assert!(ring.push(rec(i)));
        }
        assert_eq!(ring.len(), 5);
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        assert_eq!(out.len(), 5);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(*r, rec(i as u64));
        }
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn full_ring_drops_and_counts_without_blocking() {
        let ring = TraceRing::with_capacity(4);
        for i in 0..4 {
            assert!(ring.push(rec(i)));
        }
        // Next three pushes must fail fast and be accounted.
        for i in 4..7 {
            assert!(!ring.push(rec(i)));
        }
        assert_eq!(ring.dropped(), 3);
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        // Oldest four survive; dropped events are gone.
        assert_eq!(
            out.iter().map(|r| r.ts).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn wraparound_reuses_slots_after_drain() {
        let ring = TraceRing::with_capacity(4);
        let mut out = Vec::new();
        // Run the cursors several times around the ring.
        for round in 0..10u64 {
            for i in 0..4 {
                assert!(ring.push(rec(round * 4 + i)));
            }
            out.clear();
            ring.drain_into(&mut out);
            assert_eq!(
                out.iter().map(|r| r.ts).collect::<Vec<_>>(),
                (round * 4..round * 4 + 4).collect::<Vec<_>>()
            );
        }
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn interleaved_push_drain_wraps_correctly() {
        let ring = TraceRing::with_capacity(4);
        let mut seen = Vec::new();
        let mut out = Vec::new();
        let mut next = 0u64;
        for _ in 0..25 {
            for _ in 0..3 {
                if ring.push(rec(next)) {
                    // ok
                }
                next += 1;
            }
            out.clear();
            ring.drain_into(&mut out);
            seen.extend(out.iter().map(|r| r.ts));
        }
        // With capacity 4 and bursts of 3, nothing ever drops, and order holds.
        assert_eq!(ring.dropped(), 0);
        assert_eq!(seen, (0..75).collect::<Vec<_>>());
    }

    #[test]
    fn clear_resets_contents_and_drop_counter() {
        let ring = TraceRing::with_capacity(2);
        ring.push(rec(0));
        ring.push(rec(1));
        ring.push(rec(2)); // dropped
        assert_eq!(ring.dropped(), 1);
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_capacity_panics() {
        let _ = TraceRing::with_capacity(3);
    }

    #[test]
    fn concurrent_producer_consumer_loses_nothing() {
        use std::sync::Arc;
        let ring = Arc::new(TraceRing::with_capacity(1024));
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut pushed = 0u64;
                for i in 0..100_000u64 {
                    if ring.push(rec(i)) {
                        pushed += 1;
                    }
                }
                pushed
            })
        };
        let mut got = Vec::new();
        while !producer.is_finished() {
            ring.drain_into(&mut got);
        }
        ring.drain_into(&mut got);
        let pushed = producer.join().unwrap();
        assert_eq!(got.len() as u64, pushed);
        assert_eq!(pushed + ring.dropped(), 100_000);
        // Sequence numbers of accepted records are strictly increasing.
        for w in got.windows(2) {
            assert!(w[0].ts < w[1].ts);
        }
    }
}
