//! Drain/export layer: chrome://tracing JSON and an ASCII per-kind summary.
//!
//! The chrome exporter emits the [Trace Event Format]'s JSON-object form with
//! one instant event per record. Timestamps are microseconds (the format's
//! unit) rendered with three decimal places so the full nanosecond resolution
//! survives; rendering is pure integer formatting, so output is byte-stable
//! for a given record list — the golden test relies on that.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use hermes_metrics::{fmt_nanos, table::Table, Histogram};

use crate::counters::CounterId;
use crate::record::{EventKind, TraceRecord};

/// Render records as chrome://tracing JSON (instant events, thread scope).
///
/// `pid` is always 0; `tid` is the lane/worker id, so chrome's per-thread
/// rows line up with Hermes workers (64 = kernel path, 65 = control plane).
pub fn chrome_json(records: &[TraceRecord]) -> String {
    let mut out = String::with_capacity(64 + records.len() * 104);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{}.{:03},\"pid\":0,\"tid\":{},\"args\":{{\"a\":{},\"b\":{}}}}}",
            r.kind.name(),
            r.ts / 1_000,
            r.ts % 1_000,
            r.worker,
            r.a,
            r.b
        ));
    }
    out.push_str("\n]}\n");
    out
}

/// Render an ASCII summary: one row per event kind (count, lane spread,
/// time range, p50/p99 inter-event gap) plus every non-zero counter.
pub fn summary(records: &[TraceRecord], counters: &[(CounterId, u64)], dropped: u64) -> String {
    let mut events = Table::new(format!(
        "Flight recorder: {} events, {} dropped",
        records.len(),
        dropped
    ))
    .header([
        "kind", "count", "lanes", "first", "last", "gap p50", "gap p99",
    ]);
    for kind in EventKind::ALL {
        let mut count = 0u64;
        let mut lanes = std::collections::BTreeSet::new();
        let mut first = u64::MAX;
        let mut last = 0u64;
        let mut gaps = Histogram::latency();
        let mut prev: Option<u64> = None;
        for r in records.iter().filter(|r| r.kind == kind) {
            count += 1;
            lanes.insert(r.worker);
            first = first.min(r.ts);
            last = last.max(r.ts);
            if let Some(p) = prev {
                gaps.record(r.ts.saturating_sub(p));
            }
            prev = Some(r.ts);
        }
        if count == 0 {
            continue;
        }
        let gap = |q: f64| {
            if gaps.count() == 0 {
                "-".to_string()
            } else {
                fmt_nanos(gaps.value_at_quantile(q))
            }
        };
        events.row([
            kind.name().to_string(),
            count.to_string(),
            lanes.len().to_string(),
            fmt_nanos(first),
            fmt_nanos(last),
            gap(0.50),
            gap(0.99),
        ]);
    }
    let mut out = events.render();
    // Grouped deployments: break dispatch out per level-1 group. The group
    // index travels in the high word of a `GroupDispatch` record's `b`
    // payload, so the breakdown survives lane aliasing on >64-worker runs.
    let mut per_group: std::collections::BTreeMap<u32, (u64, std::collections::BTreeSet<u32>)> =
        std::collections::BTreeMap::new();
    for r in records
        .iter()
        .filter(|r| r.kind == EventKind::GroupDispatch)
    {
        let entry = per_group.entry((r.b >> 32) as u32).or_default();
        entry.0 += 1;
        entry.1.insert(r.b as u32);
    }
    if !per_group.is_empty() {
        let mut gtab = Table::new("Grouped dispatch").header(["group", "dispatches", "workers"]);
        for (group, (count, workers)) in &per_group {
            gtab.row([
                group.to_string(),
                count.to_string(),
                workers.len().to_string(),
            ]);
        }
        out.push('\n');
        out.push_str(&gtab.render());
    }
    let mut ctab = Table::new("Counters").header(["counter", "value"]);
    for (id, v) in counters {
        if *v != 0 {
            ctab.row([id.name().to_string(), v.to_string()]);
        }
    }
    if ctab.row_count() > 0 {
        out.push('\n');
        out.push_str(&ctab.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ts: u64, kind: EventKind, worker: u32, a: u64, b: u64) -> TraceRecord {
        TraceRecord {
            ts,
            kind,
            worker,
            a,
            b,
        }
    }

    #[test]
    fn chrome_json_formats_sub_microsecond_timestamps() {
        let out = chrome_json(&[rec(1_234, EventKind::SimSyn, 64, 7, 8)]);
        assert!(out.contains("\"ts\":1.234"), "{out}");
        assert!(out.contains("\"name\":\"sim.syn\""));
        assert!(out.contains("\"tid\":64"));
    }

    #[test]
    fn chrome_json_of_empty_trace_is_well_formed() {
        let out = chrome_json(&[]);
        assert_eq!(out, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n]}\n");
    }

    #[test]
    fn summary_lists_kinds_and_nonzero_counters() {
        let records = vec![
            rec(100, EventKind::SimSyn, 64, 1, 11),
            rec(200, EventKind::SimSyn, 64, 2, 22),
            rec(300, EventKind::SimWake, 3, 4, 0),
        ];
        let counters = [
            (CounterId::SimSyns, 2),
            (CounterId::SimWakes, 1),
            (CounterId::FallbackDispatches, 0),
        ];
        let s = summary(&records, &counters, 5);
        assert!(s.contains("3 events, 5 dropped"));
        assert!(s.contains("sim.syn"));
        assert!(s.contains("sim.wake"));
        assert!(s.contains("sim.syns"));
        // Zero counters are suppressed.
        assert!(!s.contains("dispatch.fallback"));
    }

    #[test]
    fn summary_breaks_grouped_dispatch_out_by_group() {
        let records = vec![
            rec(10, EventKind::GroupDispatch, 64, 0xabc, (0u64 << 32) | 3),
            rec(20, EventKind::GroupDispatch, 64, 0xdef, (0u64 << 32) | 5),
            rec(30, EventKind::GroupDispatch, 64, 0x123, (2u64 << 32) | 130),
        ];
        let s = summary(&records, &[], 0);
        assert!(s.contains("Grouped dispatch"), "{s}");
        // Group 0 saw two dispatches over two distinct workers; group 2 one.
        let row = |g: &str| {
            s.lines()
                .map(|l| l.split_whitespace().collect::<Vec<_>>())
                .find(|w| w.first() == Some(&g))
                .unwrap_or_else(|| panic!("no row for group {g} in {s}"))
                .iter()
                .map(|w| w.to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(row("0")[1..3], ["2".to_string(), "2".to_string()]);
        assert_eq!(row("2")[1..3], ["1".to_string(), "1".to_string()]);
        // Flat traces stay untouched.
        assert!(
            !summary(&[rec(1, EventKind::Dispatch, 0, 0, 0)], &[], 0).contains("Grouped dispatch")
        );
    }
}
