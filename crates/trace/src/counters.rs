//! Monotonic pipeline counters.
//!
//! A small fixed registry of `AtomicU64`s indexed by [`CounterId`]. Each
//! counter lives on its own cache line so two pipeline stages bumping
//! different counters never false-share. Counters are monotonic: `add`
//! accumulates, `max` ratchets (used for "worst overshoot"-style gauges).

use std::sync::atomic::{AtomicU64, Ordering};

/// Identity of one monotonic counter. The discriminant is the registry index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum CounterId {
    /// Scheduler passes (Algorithm 1 full runs).
    SchedPasses = 0,
    /// Workers rejected by some cascading-filter stage.
    SchedStageRejects = 1,
    /// Admit-bitmap publishes from worker sessions to the kernel map.
    BitmapPublishes = 2,
    /// Kernel-side bitmap syncs observed by the sel map.
    KernelBitmapSyncs = 3,
    /// WST snapshot reuses (epoch unchanged).
    WstSnapshotHits = 4,
    /// WST snapshots rebuilt because the epoch moved.
    WstSnapshotMisses = 5,
    /// Flows dispatched to a bitmap-admitted worker.
    DirectedDispatches = 6,
    /// Flows that fell back to hashing over all alive workers.
    FallbackDispatches = 7,
    /// `dispatch_batch` invocations.
    DispatchBatches = 8,
    /// Flows carried by those batches.
    BatchedFlows = 9,
    /// VM executions on the checked (interpreter) tier.
    VmRunsChecked = 10,
    /// VM executions on the fast (unchecked interpreter) tier.
    VmRunsFast = 11,
    /// VM executions on the compiled tier.
    VmRunsCompiled = 12,
    /// Accept bursts drained by the lb server.
    AcceptBursts = 13,
    /// Connections accepted by the lb server.
    AcceptedConns = 14,
    /// Proxied connections completed by lb workers.
    ProxiedConns = 15,
    /// Pacer deadlines that were already overdue on entry.
    PacerDeadlineMisses = 16,
    /// Worst single pacer overshoot in nanoseconds (max-ratchet).
    PacerMaxOvershootNs = 17,
    /// Simulated SYN arrivals.
    SimSyns = 18,
    /// Simulated worker wakes.
    SimWakes = 19,
    /// Simulated dispatch decisions.
    SimDispatches = 20,
    /// Redundant bitmap syncs elided by `store_if_changed`.
    BitmapSyncSkips = 21,
    /// Grouped (two-level) dispatch decisions.
    GroupDispatches = 22,
    /// Grouped workers that could not be assigned a trace lane (lane
    /// space is 64 wide; a 256-worker deployment overflows it).
    TraceLaneOverflows = 23,
    /// Basic blocks proven equivalent by the translation validator.
    ValidatorBlocksProven = 24,
    /// Symbolic machine steps executed by the translation validator.
    ValidatorSymbolicSteps = 25,
    /// Validation certificates issued (compiled-tier admissions proven).
    ValidatorCertsIssued = 26,
    /// VM executions on the jit (native x86-64) tier.
    VmRunsJit = 27,
    /// Constant-fd slot resolutions built from the registry (cache
    /// misses); a warm frozen-registry dispatch loop holds this at one.
    VmResolveBuilds = 28,
    /// Payload bytes moved by the relay loop (both directions).
    RelayBytes = 29,
    /// Relay pump bursts (one per worker-loop iteration with active
    /// connections).
    RelayBursts = 30,
    /// Backend connect/resolve retries beyond the pinned backend.
    BackendRetries = 31,
    /// Payload bytes moved kernel-to-kernel by the relay's splice(2)
    /// fast path (counted as they leave the pipe toward the peer).
    SpliceBytes = 32,
    /// Relay directions demoted from splice to the scratch-copy path
    /// (`EINVAL`/`ENOSYS` from the kernel, or inspection required).
    SpliceFallbacks = 33,
    /// Relay reactor `epoll_wait` returns that carried ≥ 1 ready event.
    ReactorWakeups = 34,
}

impl CounterId {
    /// Number of counters in the registry.
    pub const COUNT: usize = 35;

    /// Every counter, in registry order.
    pub const ALL: [CounterId; CounterId::COUNT] = [
        CounterId::SchedPasses,
        CounterId::SchedStageRejects,
        CounterId::BitmapPublishes,
        CounterId::KernelBitmapSyncs,
        CounterId::WstSnapshotHits,
        CounterId::WstSnapshotMisses,
        CounterId::DirectedDispatches,
        CounterId::FallbackDispatches,
        CounterId::DispatchBatches,
        CounterId::BatchedFlows,
        CounterId::VmRunsChecked,
        CounterId::VmRunsFast,
        CounterId::VmRunsCompiled,
        CounterId::AcceptBursts,
        CounterId::AcceptedConns,
        CounterId::ProxiedConns,
        CounterId::PacerDeadlineMisses,
        CounterId::PacerMaxOvershootNs,
        CounterId::SimSyns,
        CounterId::SimWakes,
        CounterId::SimDispatches,
        CounterId::BitmapSyncSkips,
        CounterId::GroupDispatches,
        CounterId::TraceLaneOverflows,
        CounterId::ValidatorBlocksProven,
        CounterId::ValidatorSymbolicSteps,
        CounterId::ValidatorCertsIssued,
        CounterId::VmRunsJit,
        CounterId::VmResolveBuilds,
        CounterId::RelayBytes,
        CounterId::RelayBursts,
        CounterId::BackendRetries,
        CounterId::SpliceBytes,
        CounterId::SpliceFallbacks,
        CounterId::ReactorWakeups,
    ];

    /// Stable dotted name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            CounterId::SchedPasses => "sched.passes",
            CounterId::SchedStageRejects => "sched.stage_rejects",
            CounterId::BitmapPublishes => "bitmap.publishes",
            CounterId::KernelBitmapSyncs => "bitmap.kernel_syncs",
            CounterId::WstSnapshotHits => "wst.snapshot_hits",
            CounterId::WstSnapshotMisses => "wst.snapshot_misses",
            CounterId::DirectedDispatches => "dispatch.directed",
            CounterId::FallbackDispatches => "dispatch.fallback",
            CounterId::DispatchBatches => "dispatch.batches",
            CounterId::BatchedFlows => "dispatch.batched_flows",
            CounterId::VmRunsChecked => "vm.runs_checked",
            CounterId::VmRunsFast => "vm.runs_fast",
            CounterId::VmRunsCompiled => "vm.runs_compiled",
            CounterId::AcceptBursts => "lb.accept_bursts",
            CounterId::AcceptedConns => "lb.accepted_conns",
            CounterId::ProxiedConns => "lb.proxied_conns",
            CounterId::PacerDeadlineMisses => "pacer.deadline_misses",
            CounterId::PacerMaxOvershootNs => "pacer.max_overshoot_ns",
            CounterId::SimSyns => "sim.syns",
            CounterId::SimWakes => "sim.wakes",
            CounterId::SimDispatches => "sim.dispatches",
            CounterId::BitmapSyncSkips => "bitmap.sync_skips",
            CounterId::GroupDispatches => "dispatch.grouped",
            CounterId::TraceLaneOverflows => "trace.lane_overflows",
            CounterId::ValidatorBlocksProven => "validate.blocks_proven",
            CounterId::ValidatorSymbolicSteps => "validate.symbolic_steps",
            CounterId::ValidatorCertsIssued => "validate.certs_issued",
            CounterId::VmRunsJit => "vm.runs_jit",
            CounterId::VmResolveBuilds => "vm.resolve_builds",
            CounterId::RelayBytes => "relay.bytes",
            CounterId::RelayBursts => "relay.bursts",
            CounterId::BackendRetries => "backend.retries",
            CounterId::SpliceBytes => "relay.splice_bytes",
            CounterId::SpliceFallbacks => "relay.splice_fallbacks",
            CounterId::ReactorWakeups => "relay.reactor_wakeups",
        }
    }
}

/// One counter on its own cache line.
#[repr(align(64))]
struct PaddedCounter(AtomicU64);

/// Fixed registry of cache-line-padded monotonic counters.
pub struct CounterRegistry {
    cells: [PaddedCounter; CounterId::COUNT],
}

impl CounterRegistry {
    /// All-zero registry.
    pub fn new() -> Self {
        Self {
            cells: std::array::from_fn(|_| PaddedCounter(AtomicU64::new(0))),
        }
    }

    /// Add `n` to a counter.
    #[inline]
    pub fn add(&self, id: CounterId, n: u64) {
        self.cells[id as usize].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Ratchet a counter up to at least `v` (for max-style gauges).
    #[inline]
    pub fn max(&self, id: CounterId, v: u64) {
        self.cells[id as usize].0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self, id: CounterId) -> u64 {
        self.cells[id as usize].0.load(Ordering::Relaxed)
    }

    /// Snapshot of every counter, in [`CounterId::ALL`] order.
    pub fn snapshot(&self) -> [(CounterId, u64); CounterId::COUNT] {
        std::array::from_fn(|i| (CounterId::ALL[i], self.get(CounterId::ALL[i])))
    }

    /// Zero every counter (test/reset aid).
    pub fn reset(&self) {
        for c in &self.cells {
            c.0.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for CounterRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for CounterRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("CounterRegistry");
        for (id, v) in self.snapshot() {
            if v != 0 {
                s.field(id.name(), &v);
            }
        }
        s.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_match_all_table() {
        assert_eq!(CounterId::ALL.len(), CounterId::COUNT);
        for (i, id) in CounterId::ALL.iter().enumerate() {
            assert_eq!(*id as usize, i, "discriminant order broke for {id:?}");
        }
        let mut names = std::collections::HashSet::new();
        for id in CounterId::ALL {
            assert!(names.insert(id.name()));
        }
    }

    #[test]
    fn cells_are_cache_line_padded() {
        assert_eq!(std::mem::align_of::<PaddedCounter>(), 64);
        assert_eq!(std::mem::size_of::<PaddedCounter>(), 64);
    }

    #[test]
    fn add_and_max_behave_monotonically() {
        let reg = CounterRegistry::new();
        reg.add(CounterId::SimSyns, 3);
        reg.add(CounterId::SimSyns, 4);
        assert_eq!(reg.get(CounterId::SimSyns), 7);
        reg.max(CounterId::PacerMaxOvershootNs, 50);
        reg.max(CounterId::PacerMaxOvershootNs, 20);
        reg.max(CounterId::PacerMaxOvershootNs, 80);
        assert_eq!(reg.get(CounterId::PacerMaxOvershootNs), 80);
        reg.reset();
        assert_eq!(reg.get(CounterId::SimSyns), 0);
        assert_eq!(reg.get(CounterId::PacerMaxOvershootNs), 0);
    }
}
