//! Golden test for the chrome://tracing exporter, plus an end-to-end drain
//! of the global recorder. The golden string is what chrome's JSON parser
//! must accept; the dependency-free validator below stands in for that
//! parser (strict RFC-8259 subset: objects, arrays, strings, numbers).

use hermes_trace::{chrome_json, EventKind, TraceRecord, CONTROL_LANE, KERNEL_LANE};

mod json {
    //! Minimal strict JSON parser used only to prove exporter output is
    //! well-formed. Returns the parsed value tree.

    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }
        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }
        pub fn as_num(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
    }

    pub fn parse(s: &str) -> Result<Value, String> {
        let b = s.as_bytes();
        let mut i = 0;
        let v = value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i != b.len() {
            return Err(format!("trailing bytes at {i}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        }
    }

    fn value(b: &[u8], i: &mut usize) -> Result<Value, String> {
        skip_ws(b, i);
        match b.get(*i) {
            Some(b'{') => {
                *i += 1;
                let mut fields = Vec::new();
                skip_ws(b, i);
                if b.get(*i) == Some(&b'}') {
                    *i += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    skip_ws(b, i);
                    let k = match value(b, i)? {
                        Value::Str(s) => s,
                        other => return Err(format!("non-string key {other:?}")),
                    };
                    skip_ws(b, i);
                    if b.get(*i) != Some(&b':') {
                        return Err(format!("expected ':' at {i}"));
                    }
                    *i += 1;
                    fields.push((k, value(b, i)?));
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b'}') => {
                            *i += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at {i}")),
                    }
                }
            }
            Some(b'[') => {
                *i += 1;
                let mut items = Vec::new();
                skip_ws(b, i);
                if b.get(*i) == Some(&b']') {
                    *i += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(value(b, i)?);
                    skip_ws(b, i);
                    match b.get(*i) {
                        Some(b',') => *i += 1,
                        Some(b']') => {
                            *i += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at {i}")),
                    }
                }
            }
            Some(b'"') => {
                *i += 1;
                let start = *i;
                while *i < b.len() && b[*i] != b'"' {
                    if b[*i] == b'\\' {
                        return Err("escapes not used by the exporter".into());
                    }
                    *i += 1;
                }
                if *i >= b.len() {
                    return Err("unterminated string".into());
                }
                let s = std::str::from_utf8(&b[start..*i])
                    .map_err(|e| e.to_string())?
                    .to_string();
                *i += 1;
                Ok(Value::Str(s))
            }
            Some(b't') if b[*i..].starts_with(b"true") => {
                *i += 4;
                Ok(Value::Bool(true))
            }
            Some(b'f') if b[*i..].starts_with(b"false") => {
                *i += 5;
                Ok(Value::Bool(false))
            }
            Some(b'n') if b[*i..].starts_with(b"null") => {
                *i += 4;
                Ok(Value::Null)
            }
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                let start = *i;
                while *i < b.len()
                    && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    *i += 1;
                }
                std::str::from_utf8(&b[start..*i])
                    .ok()
                    .and_then(|s| s.parse::<f64>().ok())
                    .map(Value::Num)
                    .ok_or_else(|| format!("bad number at {start}"))
            }
            other => Err(format!("unexpected {other:?} at {i}")),
        }
    }
}

fn fixture() -> Vec<TraceRecord> {
    vec![
        TraceRecord {
            ts: 0,
            kind: EventKind::VmLoad,
            worker: KERNEL_LANE,
            a: 2,
            b: 38,
        },
        TraceRecord {
            ts: 1_234,
            kind: EventKind::SimSyn,
            worker: KERNEL_LANE,
            a: 1,
            b: 0xdead,
        },
        TraceRecord {
            ts: 1_234,
            kind: EventKind::SimDispatch,
            worker: KERNEL_LANE,
            a: 0xdead,
            b: 3,
        },
        TraceRecord {
            ts: 2_000_500,
            kind: EventKind::SimWake,
            worker: 3,
            a: 2,
            b: 766_000,
        },
        TraceRecord {
            ts: 2_001_000,
            kind: EventKind::SchedDecision,
            worker: CONTROL_LANE,
            a: 0b1011,
            b: 0b1111,
        },
    ]
}

const GOLDEN: &str = r#"{"displayTimeUnit":"ns","traceEvents":[
{"name":"vm.load","ph":"i","s":"t","ts":0.000,"pid":0,"tid":64,"args":{"a":2,"b":38}},
{"name":"sim.syn","ph":"i","s":"t","ts":1.234,"pid":0,"tid":64,"args":{"a":1,"b":57005}},
{"name":"sim.dispatch","ph":"i","s":"t","ts":1.234,"pid":0,"tid":64,"args":{"a":57005,"b":3}},
{"name":"sim.wake","ph":"i","s":"t","ts":2000.500,"pid":0,"tid":3,"args":{"a":2,"b":766000}},
{"name":"sched.decision","ph":"i","s":"t","ts":2001.000,"pid":0,"tid":65,"args":{"a":11,"b":15}}
]}
"#;

#[test]
fn chrome_export_matches_golden_byte_for_byte() {
    assert_eq!(chrome_json(&fixture()), GOLDEN);
}

#[test]
fn chrome_export_is_valid_json_with_the_expected_shape() {
    let v = json::parse(&chrome_json(&fixture())).expect("exporter output must parse as JSON");
    assert_eq!(v.get("displayTimeUnit").unwrap().as_str(), Some("ns"));
    let events = v.get("traceEvents").unwrap().as_arr().unwrap();
    assert_eq!(events.len(), 5);
    for ev in events {
        assert_eq!(ev.get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(ev.get("s").unwrap().as_str(), Some("t"));
        assert_eq!(ev.get("pid").unwrap().as_num(), Some(0.0));
        assert!(ev.get("ts").unwrap().as_num().is_some());
        assert!(ev.get("name").unwrap().as_str().is_some());
        let args = ev.get("args").unwrap();
        assert!(args.get("a").unwrap().as_num().is_some());
        assert!(args.get("b").unwrap().as_num().is_some());
    }
    // Nanosecond resolution survives the microsecond unit.
    assert_eq!(events[1].get("ts").unwrap().as_num(), Some(1.234));
    // The empty trace parses too.
    assert!(json::parse(&chrome_json(&[])).is_ok());
}

#[test]
fn global_recorder_round_trips_through_the_exporter() {
    // This test owns the global recorder within this test binary.
    hermes_trace::reset();
    for r in fixture() {
        hermes_trace::global().emit(r.ts, r.kind, r.worker, r.a, r.b);
    }
    let drained = hermes_trace::drain();
    assert_eq!(drained.len(), 5);
    assert_eq!(chrome_json(&drained), GOLDEN);
    let s = hermes_trace::summary(&drained, &hermes_trace::counters_snapshot(), 0);
    assert!(s.contains("sim.syn"));
    assert!(s.contains("5 events"));
}
