//! # hermes-workload
//!
//! Synthetic multi-tenant L7 traffic for the Hermes evaluation.
//!
//! The paper characterizes its production traffic through aggregate
//! statistics — request-size and processing-time percentiles per region
//! (Table 1), four canonical CPS × processing-time cases (Table 3) and
//! their regional mix (Table 4), heavy-tailed tenant skew (§7), long-lived
//! connection surges (Fig. 3), and forwarding-rule counts per port
//! (Fig. A5). This crate regenerates equivalent traffic:
//!
//! * [`distr`] — the statistical distributions, implemented from scratch so
//!   they can be property-tested (exponential, lognormal, Pareto, Zipf,
//!   empirical, constant).
//! * [`arrival`] — arrival processes: Poisson, on/off bursty (MMPP-2), and
//!   deterministic pacing.
//! * [`spec`] — the workload data model handed to the simulator:
//!   connections carrying requests with service times and event counts.
//! * [`tenant`] — multi-tenant composition: ports, Zipf-weighted tenant
//!   shares, per-tenant traffic profiles.
//! * [`cases`] — the four Table 3 cases at light/medium/heavy load.
//! * [`regions`] — region profiles fitted to Table 1 percentiles and the
//!   Table 4 case mix.
//! * [`scenario`] — composite scenarios: the Fig. 3 long-lived-connection
//!   surge, probe streams (Fig. 11), and the Fig. A5 rules-per-port model.
//! * [`backend`] — backend service-time profiles (stateless exponential
//!   draws) for end-to-end latency modeling in the simnet backend plane.

pub mod arrival;
pub mod backend;
pub mod cases;
pub mod distr;
pub mod regions;
pub mod scenario;
pub mod spec;
pub mod tenant;
pub mod trace;

pub use arrival::ArrivalProcess;
pub use backend::BackendServiceProfile;
pub use cases::{Case, CaseLoad};
pub use distr::Distribution;
pub use spec::{ConnectionSpec, RequestSpec, Workload};
pub use tenant::{TenantProfile, TenantSet};

/// Deterministic RNG used across all generators: experiments must be
/// reproducible run-to-run.
pub type Rng = rand::rngs::StdRng;

/// Construct the workspace-standard RNG from a seed.
pub fn rng(seed: u64) -> Rng {
    use rand::SeedableRng;
    Rng::seed_from_u64(seed)
}
