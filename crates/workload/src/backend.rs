//! Backend service-time profiles for end-to-end latency modeling.
//!
//! Dispatch latency (what Hermes optimizes) is only half of a request's
//! life; the other half is the backend's service time. A
//! [`BackendServiceProfile`] models one backend server as an exponential
//! service-time distribution with a degradation multiplier, sampled
//! *statelessly*: each `(flow_hash, request_index)` pair hashes to its own
//! uniform draw, so the same request always gets the same service time
//! regardless of arrival order, thread count, or which other requests ran
//! first. That statelessness is what keeps the simnet backend plane
//! byte-identical across `run_fleet_with` thread counts.

/// One backend's service-time model: exponential with mean `mean_ns`,
/// scaled by `slow_multiplier` (1.0 = healthy, >1.0 = degraded).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BackendServiceProfile {
    mean_ns: u64,
    slow_multiplier: f64,
}

/// Service times are capped at this multiple of the (scaled) mean so one
/// astronomically unlucky draw cannot dominate a latency histogram.
const TAIL_CAP: f64 = 8.0;

impl BackendServiceProfile {
    /// A healthy backend with exponential service times of mean `mean_ns`.
    pub fn new(mean_ns: u64) -> Self {
        assert!(mean_ns >= 1, "service-time mean must be nonzero");
        Self {
            mean_ns,
            slow_multiplier: 1.0,
        }
    }

    /// A degraded backend: every service time scaled by `factor`
    /// (the slow-backend scenario).
    pub fn slowed(mean_ns: u64, factor: f64) -> Self {
        assert!(mean_ns >= 1, "service-time mean must be nonzero");
        assert!(factor >= 1.0, "slow factor must be >= 1");
        Self {
            mean_ns,
            slow_multiplier: factor,
        }
    }

    /// Mean service time in nanoseconds (before the slow multiplier).
    pub fn mean_ns(&self) -> u64 {
        self.mean_ns
    }

    /// Degradation multiplier (1.0 for a healthy backend).
    pub fn slow_multiplier(&self) -> f64 {
        self.slow_multiplier
    }

    /// Service time for request `req` of the connection hashed to
    /// `flow_hash`: a stateless exponential draw via inverse CDF over a
    /// SplitMix64 hash of `(flow_hash, req)`. Deterministic, order-free,
    /// capped at [`TAIL_CAP`]× the scaled mean, never zero.
    pub fn sample_ns(&self, flow_hash: u32, req: usize) -> u64 {
        let mut x = ((flow_hash as u64) << 32) ^ (req as u64) ^ 0xA076_1D64_78BD_642F;
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        // Uniform in (0, 1]: never exactly 0, so ln() is finite.
        let u = ((x >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
        let mean = self.mean_ns as f64 * self.slow_multiplier;
        let draw = -mean * u.ln();
        (draw.min(TAIL_CAP * mean) as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_order_free() {
        let p = BackendServiceProfile::new(200_000);
        let a: Vec<u64> = (0..100).map(|r| p.sample_ns(0xdead_beef, r)).collect();
        let b: Vec<u64> = (0..100).rev().map(|r| p.sample_ns(0xdead_beef, r)).collect();
        let b_fwd: Vec<u64> = b.into_iter().rev().collect();
        assert_eq!(a, b_fwd, "samples must not depend on draw order");
    }

    #[test]
    fn mean_is_roughly_respected() {
        let p = BackendServiceProfile::new(100_000);
        let n = 20_000u64;
        let sum: u64 = (0..n).map(|i| p.sample_ns(i as u32, (i % 7) as usize)).sum();
        let avg = sum as f64 / n as f64;
        // The 8× tail cap trims the true mean slightly; accept ±10%.
        assert!(
            (avg - 100_000.0).abs() < 10_000.0,
            "empirical mean {avg} too far from 100000"
        );
    }

    #[test]
    fn slow_multiplier_scales_every_draw() {
        let fast = BackendServiceProfile::new(50_000);
        let slow = BackendServiceProfile::slowed(50_000, 4.0);
        for h in 0..200u32 {
            let f = fast.sample_ns(h, 0);
            let s = slow.sample_ns(h, 0);
            // Same uniform draw underneath, so the ratio is exactly 4
            // except where the tail cap bites.
            assert!(
                s >= f,
                "slow draw {s} must not undercut healthy draw {f}"
            );
        }
    }

    #[test]
    fn tail_is_capped() {
        let p = BackendServiceProfile::new(1_000);
        for h in 0..50_000u32 {
            assert!(p.sample_ns(h, 3) <= 8_000, "tail cap violated");
        }
    }

    #[test]
    fn samples_are_never_zero() {
        let p = BackendServiceProfile::new(1);
        for h in 0..10_000u32 {
            assert!(p.sample_ns(h, 0) >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "mean must be nonzero")]
    fn zero_mean_rejected() {
        BackendServiceProfile::new(0);
    }
}
