//! The four canonical traffic cases of Table 3.
//!
//! §6.2 classifies production traffic into a 2×2 of connections-per-second
//! (CPS) × average processing time:
//!
//! | Case | CPS  | Processing time | Typical source |
//! |------|------|-----------------|----------------|
//! | 1    | high | low             | stress tests, traffic spikes |
//! | 2    | high | high            | spikes of compression/SSL-heavy work |
//! | 3    | low  | low             | finance/chat long-lived connections |
//! | 4    | low  | high            | web services (SSL handshake, regex routing) |
//!
//! The paper replays captured traffic at 1×/2×/3× for light/medium/heavy
//! load. We generate the equivalent synthetic traffic, calibrated per
//! worker so any device size can run the same case: at heavy load the
//! offered CPU utilization approaches ~0.9 per worker, which is where the
//! modes' behaviours diverge the most.

use crate::arrival::ArrivalProcess;
use crate::distr::{Constant, Exp, LogNormal};
use crate::spec::Workload;
use crate::tenant::{TenantProfile, TenantSet};
use hermes_metrics::NANOS_PER_SEC;
use std::sync::Arc;

/// One of the four Table 3 traffic cases.
///
/// ```
/// use hermes_workload::{Case, CaseLoad};
/// let wl = Case::Case1.workload(CaseLoad::Light, 4, 1_000_000_000, 42);
/// assert!(wl.mean_cps() > 2_000.0); // "high CPS"
/// assert!(wl.offered_load() < 4.0); // under aggregate capacity at light
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Case {
    /// High CPS, low average processing time.
    Case1,
    /// High CPS, high average processing time.
    Case2,
    /// Low CPS, low average processing time (long-lived connections).
    Case3,
    /// Low CPS, high average processing time.
    Case4,
}

/// Replay intensity (the paper's 1×/2×/3×).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CaseLoad {
    /// Original capture rate.
    Light,
    /// 2× replay.
    Medium,
    /// 3× replay.
    Heavy,
}

impl CaseLoad {
    /// Rate multiplier vs. the light capture.
    pub fn multiplier(self) -> f64 {
        match self {
            CaseLoad::Light => 1.0,
            CaseLoad::Medium => 2.0,
            CaseLoad::Heavy => 3.0,
        }
    }

    /// All loads in paper order.
    pub fn all() -> [CaseLoad; 3] {
        [CaseLoad::Light, CaseLoad::Medium, CaseLoad::Heavy]
    }
}

impl Case {
    /// All cases in paper order.
    pub fn all() -> [Case; 4] {
        [Case::Case1, Case::Case2, Case::Case3, Case::Case4]
    }

    /// Paper-style display name.
    pub fn name(self) -> &'static str {
        match self {
            Case::Case1 => "Case1: High CPS, Low Avg processing time",
            Case::Case2 => "Case2: High CPS, High Avg processing time",
            Case::Case3 => "Case3: Low CPS, Low Avg processing time",
            Case::Case4 => "Case4: Low CPS, High Avg processing time",
        }
    }

    /// Connections per second per worker at light load.
    pub fn base_cps_per_worker(self) -> f64 {
        match self {
            Case::Case1 => 700.0,
            Case::Case2 => 120.0,
            Case::Case3 => 25.0,
            Case::Case4 => 3.0,
        }
    }

    /// Tenant profile capturing the case's request shape.
    pub fn profile(self) -> TenantProfile {
        match self {
            // Short connections, one cheap request each: dispatch overhead
            // and wakeup fairness dominate.
            Case::Case1 => TenantProfile {
                name: "case1".into(),
                service_ns: Arc::new(Exp::with_mean(380_000.0)), // 380 µs
                size_bytes: Arc::new(Exp::with_mean(300.0)),
                requests_per_conn: Arc::new(Constant(1.0)),
                think_time_ns: Arc::new(Constant(0.0)),
                events_per_request: 2,
                linger_ns: None,
            },
            // Expensive, heavy-tailed work at high CPS: workers hit long
            // busy stretches; stateless hashing keeps feeding them.
            Case::Case2 => TenantProfile {
                name: "case2".into(),
                service_ns: Arc::new(LogNormal::from_p50_p99(800_000.0, 30_000_000.0)),
                size_bytes: Arc::new(Exp::with_mean(4_000.0)),
                requests_per_conn: Arc::new(Constant(1.0)),
                think_time_ns: Arc::new(Constant(0.0)),
                events_per_request: 2,
                linger_ns: None,
            },
            // Long-lived connections streaming many cheap requests
            // (finance/chat): connection *placement* is the decision that
            // matters, long before its requests arrive.
            Case::Case3 => TenantProfile {
                name: "case3".into(),
                service_ns: Arc::new(Exp::with_mean(35_000.0)), // 35 µs
                size_bytes: Arc::new(Exp::with_mean(600.0)),
                requests_per_conn: Arc::new(Constant(300.0)),
                think_time_ns: Arc::new(Exp::with_mean(45_000_000.0)), // 45 ms
                events_per_request: 1,
                linger_ns: Some(2 * NANOS_PER_SEC),
            },
            // Few, very expensive connections (SSL handshake + regex
            // routing): one bad placement pins a core for a long time.
            Case::Case4 => TenantProfile {
                name: "case4".into(),
                service_ns: Arc::new(LogNormal::from_p50_p99(22_000_000.0, 400_000_000.0)),
                size_bytes: Arc::new(Exp::with_mean(2_000.0)),
                requests_per_conn: Arc::new(Constant(2.0)),
                think_time_ns: Arc::new(Exp::with_mean(150_000_000.0)),
                events_per_request: 2,
                linger_ns: Some(NANOS_PER_SEC),
            },
        }
    }

    /// Whether the paper labels this case "high CPS".
    pub fn is_high_cps(self) -> bool {
        matches!(self, Case::Case1 | Case::Case2)
    }

    /// Whether the paper labels this case "high processing time".
    pub fn is_high_service(self) -> bool {
        matches!(self, Case::Case2 | Case::Case4)
    }

    /// Tenants (= ports) sharing each case's profile. Multi-tenancy is
    /// load-bearing: the O(#ports) dispatch overhead of the shared-queue
    /// modes (§6.2 Case 1) only materializes with many listening ports.
    pub const TENANTS: usize = 2_000;

    /// Generate the case's workload for a device with `workers` workers
    /// over `duration_ns`, at the given load. Traffic is spread over
    /// [`Case::TENANTS`] tenant ports with mild Zipf skew.
    pub fn workload(self, load: CaseLoad, workers: usize, duration_ns: u64, seed: u64) -> Workload {
        let mut rng = crate::rng(seed ^ (self as u64) << 8 ^ load.multiplier() as u64);
        let cps = self.base_cps_per_worker() * workers as f64 * load.multiplier();
        let tenants = TenantSet::new(vec![self.profile(); Self::TENANTS], 0.9, 20_000);
        let name = format!("{:?}-{:?}", self, load);
        tenants.workload(
            name,
            &ArrivalProcess::Poisson { rate_per_sec: cps },
            duration_ns,
            &mut rng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_matrix_labels() {
        assert!(Case::Case1.is_high_cps() && !Case::Case1.is_high_service());
        assert!(Case::Case2.is_high_cps() && Case::Case2.is_high_service());
        assert!(!Case::Case3.is_high_cps() && !Case::Case3.is_high_service());
        assert!(!Case::Case4.is_high_cps() && Case::Case4.is_high_service());
    }

    #[test]
    fn load_multipliers_match_paper_replay() {
        assert_eq!(CaseLoad::Light.multiplier(), 1.0);
        assert_eq!(CaseLoad::Medium.multiplier(), 2.0);
        assert_eq!(CaseLoad::Heavy.multiplier(), 3.0);
    }

    #[test]
    fn generated_cps_tracks_case_and_load() {
        let w_light = Case::Case1.workload(CaseLoad::Light, 4, 2 * NANOS_PER_SEC, 1);
        let w_heavy = Case::Case1.workload(CaseLoad::Heavy, 4, 2 * NANOS_PER_SEC, 1);
        let light_cps = w_light.mean_cps();
        let heavy_cps = w_heavy.mean_cps();
        assert!((light_cps - 2_800.0).abs() < 300.0, "light {light_cps}");
        assert!((heavy_cps / light_cps - 3.0).abs() < 0.2);
    }

    #[test]
    fn heavy_load_approaches_per_worker_saturation() {
        // Offered load at heavy should be near (but around) 0.75-1.1 of the
        // aggregate worker capacity for the short-request cases.
        for case in [Case::Case1, Case::Case2] {
            let workers = 4;
            let w = case.workload(CaseLoad::Heavy, workers, 2 * NANOS_PER_SEC, 2);
            let per_worker = w.offered_load() / workers as f64;
            assert!(
                (0.5..1.3).contains(&per_worker),
                "{case:?}: per-worker load {per_worker}"
            );
        }
    }

    #[test]
    fn case3_is_long_lived_case1_is_short() {
        let w1 = Case::Case1.workload(CaseLoad::Light, 2, NANOS_PER_SEC, 3);
        let w3 = Case::Case3.workload(CaseLoad::Light, 2, NANOS_PER_SEC, 3);
        let rpc1 = w1.request_count() as f64 / w1.connection_count() as f64;
        let rpc3 = w3.request_count() as f64 / w3.connection_count() as f64;
        assert!(rpc1 < 1.5, "case1 requests/conn {rpc1}");
        assert!(rpc3 > 100.0, "case3 requests/conn {rpc3}");
    }

    #[test]
    fn case4_service_is_heavy_tailed() {
        let w = Case::Case4.workload(CaseLoad::Light, 8, 4 * NANOS_PER_SEC, 4);
        let mut services: Vec<u64> = w
            .conns
            .iter()
            .flat_map(|c| c.requests.iter().map(|r| r.service_ns))
            .collect();
        services.sort_unstable();
        assert!(!services.is_empty());
        let p50 = services[services.len() / 2];
        let max = *services.last().unwrap();
        assert!(p50 > 5_000_000, "p50 {p50}");
        assert!(max as f64 / p50 as f64 > 5.0, "tail ratio");
    }

    #[test]
    fn workloads_are_deterministic_per_seed() {
        let a = Case::Case2.workload(CaseLoad::Medium, 4, NANOS_PER_SEC, 42);
        let b = Case::Case2.workload(CaseLoad::Medium, 4, NANOS_PER_SEC, 42);
        assert_eq!(a.connection_count(), b.connection_count());
        assert_eq!(a.conns.first(), b.conns.first());
        let c = Case::Case2.workload(CaseLoad::Medium, 4, NANOS_PER_SEC, 43);
        assert_ne!(
            a.conns.first().map(|x| x.flow),
            c.conns.first().map(|x| x.flow)
        );
    }
}
