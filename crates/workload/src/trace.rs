//! Workload trace serialization.
//!
//! The paper's Table 3 methodology is *capture and replay*: traffic from
//! problem cases was collected and replayed at 1×/2×/3×. This module gives
//! the workspace the same workflow — a generated (or hand-built) workload
//! can be saved as a JSON trace, shared, and replayed bit-identically
//! under any dispatch mode or configuration.

use crate::spec::Workload;
use std::io::{Read, Write};
use std::path::Path;

/// Errors from trace I/O.
#[derive(Debug)]
pub enum TraceError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed trace content.
    Format(serde_json::Error),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace io error: {e}"),
            TraceError::Format(e) => write!(f, "trace format error: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<serde_json::Error> for TraceError {
    fn from(e: serde_json::Error) -> Self {
        TraceError::Format(e)
    }
}

/// Serialize a workload to a JSON string.
pub fn to_json(wl: &Workload) -> Result<String, TraceError> {
    Ok(serde_json::to_string(wl)?)
}

/// Deserialize a workload from JSON and re-seal it (sorting invariants are
/// re-established rather than trusted).
pub fn from_json(json: &str) -> Result<Workload, TraceError> {
    let wl: Workload = serde_json::from_str(json)?;
    Ok(wl.seal())
}

/// Write a workload trace to disk.
pub fn save(wl: &Workload, path: impl AsRef<Path>) -> Result<(), TraceError> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_json(wl)?.as_bytes())?;
    Ok(())
}

/// Load a workload trace from disk.
pub fn load(path: impl AsRef<Path>) -> Result<Workload, TraceError> {
    let mut s = String::new();
    std::fs::File::open(path)?.read_to_string(&mut s)?;
    from_json(&s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Case, CaseLoad};

    #[test]
    fn json_round_trip_is_identity() {
        let wl = Case::Case2.workload(CaseLoad::Light, 2, 300_000_000, 11);
        let json = to_json(&wl).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(back.name, wl.name);
        assert_eq!(back.duration_ns, wl.duration_ns);
        assert_eq!(back.conns, wl.conns);
    }

    #[test]
    fn file_round_trip() {
        let wl = Case::Case1.workload(CaseLoad::Light, 2, 100_000_000, 12);
        let path = std::env::temp_dir().join("hermes_trace_test.json");
        save(&wl, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.conns, wl.conns);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn load_reseals_unsorted_traces() {
        // A hand-edited trace with out-of-order arrivals must come back
        // sorted (the simulator requires sealed workloads).
        let json = r#"{
            "name": "hand",
            "duration_ns": 1000000,
            "conns": [
                {"arrival_ns": 500, "flow": {"src_ip":1,"src_port":2,"dst_ip":3,"dst_port":4},
                 "tenant": 0, "port": 4, "requests": [], "linger_ns": null},
                {"arrival_ns": 100, "flow": {"src_ip":5,"src_port":6,"dst_ip":7,"dst_port":8},
                 "tenant": 0, "port": 8, "requests": [], "linger_ns": null}
            ]
        }"#;
        let wl = from_json(json).unwrap();
        assert_eq!(wl.conns[0].arrival_ns, 100);
        assert_eq!(wl.conns[1].arrival_ns, 500);
    }

    #[test]
    fn malformed_json_is_a_format_error() {
        match from_json("{not json") {
            Err(TraceError::Format(_)) => {}
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn missing_file_is_an_io_error() {
        match load("/nonexistent/path/to/trace.json") {
            Err(TraceError::Io(_)) => {}
            other => panic!("expected io error, got {other:?}"),
        }
    }
}
