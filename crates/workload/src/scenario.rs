//! Composite scenarios beyond the four cases.
//!
//! * [`surge`] — the Fig. 3 lag effect: long-lived connections accumulate
//!   quietly, then fire simultaneously; uneven *connection* placement
//!   becomes uneven *CPU* load much later.
//! * [`probes`] — the Fig. 11 health-probe stream: tiny paced requests
//!   whose end-to-end delay flags hung workers (>200 ms ⇒ "delayed").
//! * [`hang_inducing`] — a background mix with a tenant whose tail requests
//!   pin a worker long enough to trip hang detection.
//! * [`rules_per_port`] — the Fig. A5 forwarding-rule-count model.
//! * [`region_mix`] — a production-like blend of the four cases in a
//!   region's Table 4 proportions (drives Fig. 13 / Table 2).

use crate::arrival::ArrivalProcess;
use crate::cases::{Case, CaseLoad};
use crate::distr::{Constant, Distribution, Exp, LogNormal, Pareto};
use crate::regions::Region;
use crate::spec::{ConnectionSpec, RequestSpec, Workload};
use crate::tenant::{TenantProfile, TenantSet};
use hermes_core::FlowKey;
use hermes_metrics::NANOS_PER_SEC;
use std::sync::Arc;

/// Parameters of the Fig. 3 long-lived-connection surge.
#[derive(Clone, Copy, Debug)]
pub struct SurgeConfig {
    /// Long-lived connections to establish.
    pub connections: usize,
    /// Establishment window (connections trickle in over this period).
    pub ramp_ns: u64,
    /// Quiet gap between ramp completion and the surge.
    pub quiet_ns: u64,
    /// All connections fire within this window at surge time.
    pub surge_window_ns: u64,
    /// Requests each connection fires during the surge.
    pub burst_requests: u32,
    /// Mean per-request service time during the surge (ns).
    pub burst_service_ns: f64,
    /// Horizon after the surge for drain.
    pub drain_ns: u64,
}

impl Default for SurgeConfig {
    fn default() -> Self {
        Self {
            connections: 2_000,
            ramp_ns: 5 * NANOS_PER_SEC,
            quiet_ns: 5 * NANOS_PER_SEC,
            surge_window_ns: NANOS_PER_SEC / 2,
            burst_requests: 6,
            burst_service_ns: 400_000.0, // 400 µs
            drain_ns: 5 * NANOS_PER_SEC,
        }
    }
}

/// Build the Fig. 3 surge workload: quiet accumulation then synchronized
/// burst (quantitative trading's "sudden traffic bursts if certain trading
/// conditions are met").
pub fn surge(config: SurgeConfig, seed: u64) -> Workload {
    use rand::RngExt as _;
    let mut rng = crate::rng(seed);
    let surge_at = config.ramp_ns + config.quiet_ns;
    let horizon = surge_at + config.surge_window_ns + config.drain_ns;
    let service = Exp::with_mean(config.burst_service_ns);
    let mut w = Workload::new("fig3-surge", horizon);
    for i in 0..config.connections {
        let arrival = (config.ramp_ns as f64 * rng.random::<f64>()) as u64;
        let fire_at = surge_at + (config.surge_window_ns as f64 * rng.random::<f64>()) as u64;
        let mut requests = Vec::with_capacity(config.burst_requests as usize + 1);
        // A handshake-time request so placement costs something immediately.
        requests.push(RequestSpec {
            start_offset_ns: 0,
            service_ns: 20_000,
            events: 1,
            size_bytes: 200,
        });
        let mut offset = fire_at.saturating_sub(arrival);
        for _ in 0..config.burst_requests {
            requests.push(RequestSpec {
                start_offset_ns: offset,
                service_ns: service.sample(&mut rng).max(1.0) as u64,
                events: 1,
                size_bytes: 500,
            });
            offset += 1_000_000; // 1 ms pacing inside the burst
        }
        w.push(ConnectionSpec {
            arrival_ns: arrival,
            flow: FlowKey::new(
                0x0b00_0000 + i as u32,
                2000 + (i % 30_000) as u16,
                0x0aff_0001,
                9000,
            ),
            tenant: 0,
            port: 9000,
            requests,
            linger_ns: Some(config.drain_ns),
        });
    }
    w.seal()
}

/// Health-probe stream (Fig. 11): one probe per `interval_ns`, negligible
/// service cost. The LB "contains no probe processing logic", so any
/// end-to-end delay beyond queueing is a hung worker.
pub fn probes(interval_ns: u64, duration_ns: u64, port: u16) -> Workload {
    let mut w = Workload::new("probes", duration_ns);
    let mut t = 0u64;
    let mut i = 0u32;
    while t < duration_ns {
        w.push(ConnectionSpec {
            arrival_ns: t,
            flow: FlowKey::new(
                0x0c00_0000 + i,
                3000 + (i % 20_000) as u16,
                0x0aff_0001,
                port,
            ),
            tenant: u16::MAX, // probe pseudo-tenant
            port,
            requests: vec![RequestSpec {
                start_offset_ns: 0,
                service_ns: 10_000, // 10 µs: pure forwarding
                events: 1,
                size_bytes: 64,
            }],
            linger_ns: None,
        });
        t += interval_ns;
        i += 1;
    }
    w.seal()
}

/// A background mix containing a misbehaving tenant whose request tail
/// occasionally pins a worker (the "stuck on a read event" incident:
/// 30 ms → 440 s). Used by the Fig. 11 before/after comparison.
pub fn hang_inducing(workers: usize, duration_ns: u64, seed: u64) -> Workload {
    let mut rng = crate::rng(seed);
    let tenants = TenantSet::new(
        vec![
            TenantProfile::simple_http(300_000.0),
            // The hazard tenant: P50 2 ms with a brutal tail (hundreds of
            // ms to seconds at P99.9) that traps edge-triggered workers.
            TenantProfile {
                name: "hazard".into(),
                service_ns: Arc::new(LogNormal::from_p50_p99(2_000_000.0, 400_000_000.0)),
                size_bytes: Arc::new(Pareto::new(500.0, 1.3)),
                requests_per_conn: Arc::new(Constant(1.0)),
                think_time_ns: Arc::new(Constant(0.0)),
                events_per_request: 2,
                linger_ns: None,
            },
        ],
        0.6,
        7000,
    );
    let cps = 60.0 * workers as f64;
    tenants.workload(
        "hang-inducing",
        &ArrivalProcess::Poisson { rate_per_sec: cps },
        duration_ns,
        &mut rng,
    )
}

/// Fig. A5: number of forwarding rules per port across a region. Most ports
/// carry a handful of rules; a tail of configuration-heavy tenants carries
/// thousands — a Pareto body with a cap.
pub fn rules_per_port(ports: usize, seed: u64) -> Vec<u32> {
    let mut rng = crate::rng(seed);
    let d = Pareto::new(1.0, 0.7);
    (0..ports)
        .map(|_| (d.sample(&mut rng).round() as u32).clamp(1, 100_000))
        .collect()
}

/// A production-like blend: connections drawn from the region's Table 4
/// case mix, each shaped by that case's tenant profile. Powers Table 2,
/// Fig. 4/5, and Fig. 13.
pub fn region_mix(
    region: &Region,
    workers: usize,
    load: CaseLoad,
    duration_ns: u64,
    seed: u64,
) -> Workload {
    let mut rng = crate::rng(seed);
    // Each case contributes its own arrival stream, scaled by the region's
    // mix weight so the blend's *connection* proportions match Table 4.
    let mut w = Workload::new(format!("{}-mix-{:?}", region.name, load), duration_ns);
    let mut seq = 0u32;
    for (i, case) in Case::all().into_iter().enumerate() {
        let weight = region.case_mix[i];
        if weight <= 0.0 {
            continue;
        }
        let cps = case.base_cps_per_worker() * workers as f64 * load.multiplier() * weight;
        if cps < 0.5 {
            continue;
        }
        let tenants = TenantSet::new(vec![case.profile()], 0.0, 20_000 + (i as u16) * 100);
        for t in (ArrivalProcess::Poisson { rate_per_sec: cps }).generate(0, duration_ns, &mut rng)
        {
            let mut conn = tenants.generate_connection(t, seq, &mut rng);
            conn.tenant = i as u16;
            seq = seq.wrapping_add(1);
            w.push(conn);
        }
    }
    w.seal()
}

/// Per-device seed for fleet-scale runs: a splitmix64-style scramble of
/// the fleet seed by device index. Pure function of `(fleet_seed,
/// device)`, so fleet workload generation can happen on any pool thread
/// (or be re-generated for a single device) without changing the stream.
pub fn fleet_device_seed(fleet_seed: u64, device: usize) -> u64 {
    let mut z = fleet_seed ^ (device as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Device `device`'s slice of a fleet-wide [`region_mix`] deployment:
/// every device sees statistically identical production traffic (the L4
/// LB splits flows evenly), so each draws an *independent* region-mix
/// stream from its scrambled seed instead of hash-splitting one giant
/// workload — generation stays O(one device) per call, which is what
/// lets the 363-device Table 2 sweep build each device's workload inside
/// the pool worker and drop it after the run.
pub fn fleet_device_mix(
    region: &Region,
    workers: usize,
    load: CaseLoad,
    duration_ns: u64,
    fleet_seed: u64,
    device: usize,
) -> Workload {
    region_mix(
        region,
        workers,
        load,
        duration_ns,
        fleet_device_seed(fleet_seed, device),
    )
}

/// Device `device`'s slice of a fleet-wide single-case deployment (the
/// `fleet_throughput` bench drives Case 3 through this).
pub fn fleet_device_case(
    case: Case,
    load: CaseLoad,
    workers: usize,
    duration_ns: u64,
    fleet_seed: u64,
    device: usize,
) -> Workload {
    case.workload(
        load,
        workers,
        duration_ns,
        fleet_device_seed(fleet_seed, device),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_device_streams_are_stable_and_independent() {
        // Pure function of (seed, device): re-generation is identical.
        assert_eq!(fleet_device_seed(42, 7), fleet_device_seed(42, 7));
        // Neighbouring devices get well-separated seeds.
        assert_ne!(fleet_device_seed(42, 0), fleet_device_seed(42, 1));
        assert_ne!(fleet_device_seed(42, 1), fleet_device_seed(43, 1));

        let region = &crate::regions::Region::all()[1];
        let a = fleet_device_mix(region, 4, CaseLoad::Light, NANOS_PER_SEC, 7, 3);
        let b = fleet_device_mix(region, 4, CaseLoad::Light, NANOS_PER_SEC, 7, 3);
        assert_eq!(a.connection_count(), b.connection_count());
        assert!(a.connection_count() > 0);
        for (x, y) in a.conns.iter().zip(&b.conns).take(20) {
            assert_eq!(x.arrival_ns, y.arrival_ns);
            assert_eq!(x.flow, y.flow);
        }
        // A different device position draws a different stream.
        let c = fleet_device_mix(region, 4, CaseLoad::Light, NANOS_PER_SEC, 7, 4);
        let same = a
            .conns
            .iter()
            .zip(&c.conns)
            .take(20)
            .filter(|(x, y)| x.arrival_ns == y.arrival_ns)
            .count();
        assert!(same < 20, "device 3 and 4 streams identical");

        let d = fleet_device_case(Case::Case3, CaseLoad::Medium, 4, NANOS_PER_SEC, 7, 0);
        let e = fleet_device_case(Case::Case3, CaseLoad::Medium, 4, NANOS_PER_SEC, 7, 0);
        assert_eq!(d.connection_count(), e.connection_count());
        assert!(d.connection_count() > 0);
    }

    #[test]
    fn surge_has_three_phases() {
        let cfg = SurgeConfig::default();
        let w = surge(cfg, 1);
        assert_eq!(w.connection_count(), cfg.connections);
        // All arrivals within the ramp.
        assert!(w.conns.iter().all(|c| c.arrival_ns < cfg.ramp_ns));
        // All burst requests land in the surge window (±1ms pacing slack).
        let surge_at = cfg.ramp_ns + cfg.quiet_ns;
        for c in &w.conns {
            for r in &c.requests[1..] {
                let fire = c.arrival_ns + r.start_offset_ns;
                assert!(
                    fire >= surge_at && fire <= surge_at + cfg.surge_window_ns + 10_000_000,
                    "request fires at {fire}"
                );
            }
        }
        // The quiet period really is quiet: no request between ramp end
        // + small epsilon and surge start.
        let quiet_mid = cfg.ramp_ns + cfg.quiet_ns / 2;
        for c in &w.conns {
            for r in &c.requests {
                let fire = c.arrival_ns + r.start_offset_ns;
                assert!(
                    fire < cfg.ramp_ns || fire >= surge_at || fire < quiet_mid,
                    "unexpected mid-quiet request"
                );
            }
        }
    }

    #[test]
    fn probes_are_paced_and_cheap() {
        let w = probes(NANOS_PER_SEC / 10, NANOS_PER_SEC, 443);
        assert_eq!(w.connection_count(), 10);
        assert!(w.conns.iter().all(|c| c.requests.len() == 1));
        assert!(w.conns.iter().all(|c| c.requests[0].service_ns <= 10_000));
        assert!(w.conns.iter().all(|c| c.tenant == u16::MAX));
    }

    #[test]
    fn hang_inducing_has_a_heavy_tail() {
        let w = hang_inducing(4, 2 * NANOS_PER_SEC, 2);
        let max_service = w
            .conns
            .iter()
            .flat_map(|c| c.requests.iter().map(|r| r.service_ns))
            .max()
            .unwrap();
        assert!(
            max_service > 200_000_000,
            "tail too small: {max_service} ns"
        );
    }

    #[test]
    fn rules_per_port_is_skewed() {
        let rules = rules_per_port(5_000, 3);
        assert_eq!(rules.len(), 5_000);
        let ones = rules.iter().filter(|&&r| r <= 2).count();
        let big = rules.iter().filter(|&&r| r > 100).count();
        assert!(ones as f64 / 5_000.0 > 0.4, "body share {ones}");
        assert!(big > 10, "tail count {big}");
    }

    #[test]
    fn region_mix_proportions_track_table4() {
        let region = &Region::all()[0]; // Region1: case3-dominant
        let w = region_mix(region, 4, CaseLoad::Light, 2 * NANOS_PER_SEC, 4);
        assert!(w.connection_count() > 100);
        let case1 = w.conns.iter().filter(|c| c.tenant == 0).count() as f64;
        let case3 = w.conns.iter().filter(|c| c.tenant == 2).count() as f64;
        // Case 1's CPS base is much higher than case 3's, so counts are not
        // directly the mix weights; but case1 (19% weight at 700 cps)
        // should outnumber case3 (66% weight at 25 cps).
        assert!(case1 > case3);
    }

    #[test]
    fn surge_deterministic_per_seed() {
        let a = surge(SurgeConfig::default(), 9);
        let b = surge(SurgeConfig::default(), 9);
        assert_eq!(a.conns[0], b.conns[0]);
    }
}

/// Appendix C exception case 2: a Challenge-Collapsar-style attack. Normal
/// tenants run steadily; at `attack_at_ns` one tenant's CPS multiplies by
/// `attack_factor` with tiny expensive-to-refuse requests, driving every
/// worker toward saturation until cluster-level policies (sandbox
/// migration) intervene.
pub fn cc_attack(
    workers: usize,
    duration_ns: u64,
    attack_at_ns: u64,
    attack_factor: f64,
    seed: u64,
) -> Workload {
    assert!(
        attack_at_ns < duration_ns,
        "attack must start inside the horizon"
    );
    assert!(attack_factor > 1.0, "attack must amplify traffic");
    let mut rng = crate::rng(seed);
    let victim_profile = TenantProfile::simple_http(250_000.0);
    let tenants = TenantSet::new(
        vec![
            victim_profile.clone(),
            victim_profile,
            TenantProfile::simple_http(400_000.0),
        ],
        0.8,
        6_000,
    );
    let base_cps = 80.0 * workers as f64;
    let mut w = tenants.workload(
        "cc-attack",
        &ArrivalProcess::Poisson {
            rate_per_sec: base_cps,
        },
        duration_ns,
        &mut rng,
    );
    // The attacker: tenant id 2's port floods from attack_at onward.
    let attack_cps = base_cps * attack_factor;
    let mut seq = 1_000_000u32;
    for t in (ArrivalProcess::Poisson {
        rate_per_sec: attack_cps,
    })
    .generate(attack_at_ns, duration_ns - attack_at_ns, &mut rng)
    {
        let mut conn = tenants.generate_connection_for(2, t, seq, &mut rng);
        // CC attacks use cheap-to-send, costly-to-serve requests; keep the
        // service small but nonzero so saturation emerges from volume.
        for r in &mut conn.requests {
            r.service_ns = 150_000;
            r.size_bytes = 64;
        }
        seq = seq.wrapping_add(1);
        w.push(conn);
    }
    w.seal()
}

#[cfg(test)]
mod attack_tests {
    use super::*;
    use hermes_metrics::NANOS_PER_SEC;

    #[test]
    fn cc_attack_spikes_one_tenant() {
        let wl = cc_attack(4, 4 * NANOS_PER_SEC, 2 * NANOS_PER_SEC, 30.0, 5);
        // Per-tenant CPS before and after the attack moment.
        let rate = |tenant: u16, from: u64, to: u64| {
            wl.conns
                .iter()
                .filter(|c| c.tenant == tenant && c.arrival_ns >= from && c.arrival_ns < to)
                .count() as f64
                / ((to - from) as f64 / NANOS_PER_SEC as f64)
        };
        let before = rate(2, 0, 2 * NANOS_PER_SEC);
        let after = rate(2, 2 * NANOS_PER_SEC, 4 * NANOS_PER_SEC);
        assert!(
            after > 10.0 * before.max(1.0),
            "attacker rate {before} -> {after}"
        );
        // Normal tenants stay steady.
        let n_before = rate(0, 0, 2 * NANOS_PER_SEC);
        let n_after = rate(0, 2 * NANOS_PER_SEC, 4 * NANOS_PER_SEC);
        assert!((n_after / n_before.max(1.0)) < 1.5);
    }

    #[test]
    fn detector_flags_the_attack_from_the_workload() {
        use hermes_core::sandbox::AttackDetector;
        let wl = cc_attack(4, 6 * NANOS_PER_SEC, 3 * NANOS_PER_SEC, 40.0, 6);
        let mut detector = AttackDetector::new(0.2, 8.0, 500.0);
        let window = NANOS_PER_SEC / 2;
        let mut flagged_attacker = false;
        let mut flagged_normal = false;
        for tick in 0..(wl.duration_ns / window) {
            let (from, to) = (tick * window, (tick + 1) * window);
            for tenant in 0..3u16 {
                let count = wl
                    .conns
                    .iter()
                    .filter(|c| c.tenant == tenant && c.arrival_ns >= from && c.arrival_ns < to)
                    .count();
                let rate = count as f64 / (window as f64 / NANOS_PER_SEC as f64);
                let hit = detector.observe(tenant, rate);
                if tenant == 2 && to > 3 * NANOS_PER_SEC {
                    flagged_attacker |= hit;
                } else if tenant != 2 {
                    flagged_normal |= hit;
                }
            }
        }
        assert!(flagged_attacker, "attack never detected");
        assert!(!flagged_normal, "false positive on a normal tenant");
    }
}
