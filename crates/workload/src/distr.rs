//! Statistical distributions, from scratch.
//!
//! Implemented here rather than pulled from `rand_distr` so that (a) the
//! dependency set stays within the workspace's allowed list and (b) each
//! sampler carries its own property tests against analytic moments and
//! quantiles — these distributions *are* the workload model, so they must be
//! trustworthy.

use rand::RngExt as _;

/// A sampleable positive-valued distribution.
pub trait Distribution: Send + Sync + std::fmt::Debug {
    /// Draw one sample.
    fn sample(&self, rng: &mut crate::Rng) -> f64;

    /// Analytic mean where defined (used by load calibration).
    fn mean(&self) -> f64;
}

/// Degenerate distribution: always `value`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Constant(pub f64);

impl Distribution for Constant {
    fn sample(&self, _rng: &mut crate::Rng) -> f64 {
        self.0
    }
    fn mean(&self) -> f64 {
        self.0
    }
}

/// Uniform on `[lo, hi)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Create a uniform distribution on `[lo, hi)`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && hi > lo, "need lo < hi");
        Self { lo, hi }
    }
}

impl Distribution for Uniform {
    fn sample(&self, rng: &mut crate::Rng) -> f64 {
        self.lo + (self.hi - self.lo) * rng.random::<f64>()
    }
    fn mean(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }
}

/// Exponential with rate `lambda` (mean `1/lambda`) — interarrival times of
/// Poisson traffic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Exponential with rate `lambda`.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0 && lambda.is_finite(), "rate must be positive");
        Self { lambda }
    }

    /// Exponential with the given mean.
    pub fn with_mean(mean: f64) -> Self {
        Self::new(1.0 / mean)
    }
}

impl Distribution for Exp {
    fn sample(&self, rng: &mut crate::Rng) -> f64 {
        // Inverse CDF; 1-U avoids ln(0).
        let u: f64 = rng.random();
        -(1.0 - u).ln() / self.lambda
    }
    fn mean(&self) -> f64 {
        1.0 / self.lambda
    }
}

/// Log-normal: `exp(mu + sigma * N(0,1))`. The paper's processing-time
/// columns (P50 ≪ P90 ≪ P99) are classic lognormal signatures.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

/// Standard normal quantile for p = 0.99 (used by percentile fitting).
const Z_P99: f64 = 2.326_347_874_040_841;
/// Standard normal quantile for p = 0.90.
const Z_P90: f64 = 1.281_551_565_544_8;

impl LogNormal {
    /// From underlying normal parameters.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0 && sigma.is_finite(), "sigma must be >= 0");
        Self { mu, sigma }
    }

    /// Fit from the median and the 99th percentile, the two columns Table 1
    /// always provides: `median = e^mu`, `p99 = e^(mu + z99·sigma)`.
    pub fn from_p50_p99(p50: f64, p99: f64) -> Self {
        assert!(p50 > 0.0 && p99 >= p50, "need 0 < p50 <= p99");
        let mu = p50.ln();
        let sigma = (p99.ln() - mu) / Z_P99;
        Self::new(mu, sigma)
    }

    /// Quantile function (inverse CDF) given the standard-normal quantile
    /// `z` for the target probability.
    pub fn quantile_at_z(&self, z: f64) -> f64 {
        (self.mu + self.sigma * z).exp()
    }

    /// Median (`e^mu`).
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// P90 of the distribution.
    pub fn p90(&self) -> f64 {
        self.quantile_at_z(Z_P90)
    }

    /// P99 of the distribution.
    pub fn p99(&self) -> f64 {
        self.quantile_at_z(Z_P99)
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut crate::Rng) -> f64 {
        (self.mu + self.sigma * sample_std_normal(rng)).exp()
    }
    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

/// One standard-normal draw (Marsaglia polar method).
fn sample_std_normal(rng: &mut crate::Rng) -> f64 {
    loop {
        let u: f64 = 2.0 * rng.random::<f64>() - 1.0;
        let v: f64 = 2.0 * rng.random::<f64>() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * ((-2.0 * s.ln()) / s).sqrt();
        }
    }
}

/// Pareto (type I): heavy-tailed sizes/durations. `scale` is the minimum
/// value, `alpha` the tail index (smaller ⇒ heavier tail).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pareto {
    scale: f64,
    alpha: f64,
}

impl Pareto {
    /// Pareto with minimum `scale` and tail index `alpha`.
    pub fn new(scale: f64, alpha: f64) -> Self {
        assert!(
            scale > 0.0 && alpha > 0.0,
            "scale and alpha must be positive"
        );
        Self { scale, alpha }
    }
}

impl Distribution for Pareto {
    fn sample(&self, rng: &mut crate::Rng) -> f64 {
        let u: f64 = rng.random();
        self.scale / (1.0 - u).powf(1.0 / self.alpha)
    }
    fn mean(&self) -> f64 {
        if self.alpha <= 1.0 {
            f64::INFINITY
        } else {
            self.alpha * self.scale / (self.alpha - 1.0)
        }
    }
}

/// Zipf over ranks `1..=n` with exponent `s` — tenant traffic skew ("the
/// top three tenants account for 40 %, 28 %, and 22 %...", §7). Sampling by
/// precomputed cumulative weights (n is small: tenants per device).
#[derive(Clone, Debug, PartialEq)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Zipf over `n` ranks with exponent `s`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "need at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be >= 0");
        let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cumulative = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Self { cumulative }
    }

    /// Probability mass of rank `k` (1-based).
    pub fn pmf(&self, k: usize) -> f64 {
        assert!((1..=self.cumulative.len()).contains(&k));
        let hi = self.cumulative[k - 1];
        let lo = if k == 1 { 0.0 } else { self.cumulative[k - 2] };
        hi - lo
    }

    /// Sample a rank in `0..n` (0-based, convenient as an index).
    pub fn sample_index(&self, rng: &mut crate::Rng) -> usize {
        let u: f64 = rng.random();
        self.cumulative.partition_point(|&c| c < u)
    }
}

impl Distribution for Zipf {
    fn sample(&self, rng: &mut crate::Rng) -> f64 {
        (self.sample_index(rng) + 1) as f64
    }
    fn mean(&self) -> f64 {
        self.cumulative
            .iter()
            .enumerate()
            .map(|(i, _)| (i + 1) as f64 * self.pmf(i + 1))
            .sum()
    }
}

/// Empirical distribution: resample uniformly from observed values
/// (trace-like workloads).
#[derive(Clone, Debug, PartialEq)]
pub struct Empirical {
    values: Vec<f64>,
}

impl Empirical {
    /// Build from a non-empty sample of finite values.
    pub fn new(values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "empirical distribution needs samples");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "values must be finite"
        );
        Self { values }
    }
}

impl Distribution for Empirical {
    fn sample(&self, rng: &mut crate::Rng) -> f64 {
        self.values[rng.random_range(0..self.values.len())]
    }
    fn mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }
}

/// A two-component mixture: with probability `p_heavy` sample from `heavy`,
/// else from `base` — the "mostly small requests, occasional WebSocket
/// monsters" shape of Region 3 in Table 1.
#[derive(Debug)]
pub struct Mixture {
    base: Box<dyn Distribution>,
    heavy: Box<dyn Distribution>,
    p_heavy: f64,
}

impl Mixture {
    /// Mixture of `base` (probability `1-p_heavy`) and `heavy`.
    pub fn new(base: Box<dyn Distribution>, heavy: Box<dyn Distribution>, p_heavy: f64) -> Self {
        assert!((0.0..=1.0).contains(&p_heavy), "p_heavy must be in [0,1]");
        Self {
            base,
            heavy,
            p_heavy,
        }
    }
}

impl Distribution for Mixture {
    fn sample(&self, rng: &mut crate::Rng) -> f64 {
        if rng.random::<f64>() < self.p_heavy {
            self.heavy.sample(rng)
        } else {
            self.base.sample(rng)
        }
    }
    fn mean(&self) -> f64 {
        (1.0 - self.p_heavy) * self.base.mean() + self.p_heavy * self.heavy.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_metrics::Summary;
    use proptest::prelude::*;

    fn draw(d: &dyn Distribution, n: usize, seed: u64) -> Summary {
        let mut rng = crate::rng(seed);
        let mut s = Summary::with_capacity(n);
        for _ in 0..n {
            s.record(d.sample(&mut rng));
        }
        s
    }

    #[test]
    fn constant_is_constant() {
        let s = draw(&Constant(5.0), 100, 1);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let mut s = draw(&Uniform::new(2.0, 4.0), 20_000, 2);
        assert!(s.min() >= 2.0 && s.max() < 4.0);
        assert!((s.mean() - 3.0).abs() < 0.02);
    }

    #[test]
    fn exponential_mean_and_memorylessness_shape() {
        let d = Exp::with_mean(10.0);
        let mut s = draw(&d, 50_000, 3);
        assert!((s.mean() - 10.0).abs() < 0.2, "mean {}", s.mean());
        // Median of Exp = mean * ln 2.
        assert!((s.p50() - 10.0 * std::f64::consts::LN_2).abs() < 0.25);
    }

    #[test]
    fn lognormal_fit_recovers_percentiles() {
        // Region2 processing time row of Table 1: P50=10ms, P99=8190ms.
        let d = LogNormal::from_p50_p99(10.0, 8190.0);
        assert!((d.median() - 10.0).abs() < 1e-9);
        assert!((d.p99() - 8190.0).abs() < 1e-6);
        let mut s = draw(&d, 200_000, 4);
        assert!((s.p50() - 10.0).abs() / 10.0 < 0.05, "p50 {}", s.p50());
        assert!((s.p99() - 8190.0).abs() / 8190.0 < 0.25, "p99 {}", s.p99());
    }

    #[test]
    fn lognormal_mean_matches_analytic() {
        let d = LogNormal::new(1.0, 0.5);
        let s = draw(&d, 100_000, 5);
        assert!((s.mean() - d.mean()).abs() / d.mean() < 0.02);
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        let d = Pareto::new(1.0, 1.5);
        let mut s = draw(&d, 100_000, 6);
        assert!(s.min() >= 1.0);
        // Heavy tail: p999 far beyond the median.
        assert!(s.p999() / s.p50() > 20.0);
        assert!(Pareto::new(1.0, 0.9).mean().is_infinite());
    }

    #[test]
    fn zipf_matches_paper_tenant_skew() {
        // With s ≈ 1.1 over 50 tenants, the top tenant takes a large share,
        // qualitatively matching "top three tenants: 40%, 28%, 22%".
        let z = Zipf::new(50, 1.1);
        let mut counts = [0u32; 50];
        let mut rng = crate::rng(7);
        let n = 100_000;
        for _ in 0..n {
            counts[z.sample_index(&mut rng)] += 1;
        }
        let share0 = counts[0] as f64 / n as f64;
        assert!((share0 - z.pmf(1)).abs() < 0.01);
        assert!(share0 > 0.15, "top tenant share {share0}");
        assert!(counts[0] > counts[1] && counts[1] > counts[4]);
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(10, 0.8);
        let total: f64 = (1..=10).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_resamples_support() {
        let d = Empirical::new(vec![1.0, 2.0, 4.0]);
        let mut rng = crate::rng(8);
        for _ in 0..100 {
            let v = d.sample(&mut rng);
            assert!([1.0, 2.0, 4.0].contains(&v));
        }
        assert!((d.mean() - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mixture_blends_components() {
        let m = Mixture::new(Box::new(Constant(1.0)), Box::new(Constant(100.0)), 0.1);
        let s = draw(&m, 50_000, 9);
        assert!((s.mean() - 10.9).abs() < 0.5);
        assert!((m.mean() - 10.9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "p50 <= p99")]
    fn lognormal_fit_rejects_inverted_percentiles() {
        LogNormal::from_p50_p99(100.0, 10.0);
    }

    proptest! {
        /// Samplers only produce finite positive values for valid params.
        #[test]
        fn samples_are_finite_positive(seed: u64, mean in 0.1f64..1e6) {
            let mut rng = crate::rng(seed);
            let e = Exp::with_mean(mean);
            let l = LogNormal::from_p50_p99(mean, mean * 10.0);
            let p = Pareto::new(mean, 1.5);
            for _ in 0..50 {
                for d in [&e as &dyn Distribution, &l, &p] {
                    let v = d.sample(&mut rng);
                    prop_assert!(v.is_finite() && v > 0.0, "{v}");
                }
            }
        }

        /// Zipf indexes stay in range and earlier ranks dominate.
        #[test]
        fn zipf_index_in_range(seed: u64, n in 1usize..200, s in 0.0f64..3.0) {
            let z = Zipf::new(n, s);
            let mut rng = crate::rng(seed);
            for _ in 0..50 {
                prop_assert!(z.sample_index(&mut rng) < n);
            }
        }
    }
}
