//! Arrival processes: when connections reach the LB.
//!
//! Table 3's cases are parameterized by connections-per-second (CPS); the
//! Fig. 3 lag-effect scenario needs an on/off bursty source layered over a
//! long-lived connection pool. All processes generate absolute arrival
//! timestamps in nanoseconds, deterministically from the workspace RNG.

use crate::distr::{Distribution, Exp};
use hermes_metrics::NANOS_PER_SEC;

/// A connection arrival process.
#[derive(Clone, Debug)]
pub enum ArrivalProcess {
    /// Poisson arrivals at `rate_per_sec`.
    Poisson {
        /// Mean arrivals per second.
        rate_per_sec: f64,
    },
    /// Deterministic arrivals at fixed intervals.
    Paced {
        /// Arrivals per second (evenly spaced).
        rate_per_sec: f64,
    },
    /// Two-state on/off burst process (MMPP-2): Poisson at `on_rate` during
    /// "on" periods, silent during "off" periods, with exponentially
    /// distributed state holding times.
    OnOffBurst {
        /// Arrival rate while on (per second).
        on_rate_per_sec: f64,
        /// Mean on-period duration (seconds).
        mean_on_secs: f64,
        /// Mean off-period duration (seconds).
        mean_off_secs: f64,
    },
}

impl ArrivalProcess {
    /// Long-run average arrival rate per second.
    pub fn mean_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_per_sec } | ArrivalProcess::Paced { rate_per_sec } => {
                rate_per_sec
            }
            ArrivalProcess::OnOffBurst {
                on_rate_per_sec,
                mean_on_secs,
                mean_off_secs,
            } => on_rate_per_sec * mean_on_secs / (mean_on_secs + mean_off_secs),
        }
    }

    /// Generate arrival timestamps in `[start_ns, start_ns + duration_ns)`.
    pub fn generate(&self, start_ns: u64, duration_ns: u64, rng: &mut crate::Rng) -> Vec<u64> {
        let end = start_ns + duration_ns;
        let mut out = Vec::new();
        match *self {
            ArrivalProcess::Poisson { rate_per_sec } => {
                assert!(rate_per_sec > 0.0, "rate must be positive");
                let inter = Exp::new(rate_per_sec / NANOS_PER_SEC as f64);
                let mut t = start_ns as f64;
                loop {
                    t += inter.sample(rng);
                    if t >= end as f64 {
                        break;
                    }
                    out.push(t as u64);
                }
            }
            ArrivalProcess::Paced { rate_per_sec } => {
                assert!(rate_per_sec > 0.0, "rate must be positive");
                let step = NANOS_PER_SEC as f64 / rate_per_sec;
                let mut t = start_ns as f64;
                while t < end as f64 {
                    out.push(t as u64);
                    t += step;
                }
            }
            ArrivalProcess::OnOffBurst {
                on_rate_per_sec,
                mean_on_secs,
                mean_off_secs,
            } => {
                assert!(on_rate_per_sec > 0.0, "rate must be positive");
                assert!(
                    mean_on_secs > 0.0 && mean_off_secs >= 0.0,
                    "period means must be positive"
                );
                let inter = Exp::new(on_rate_per_sec / NANOS_PER_SEC as f64);
                let on_dur = Exp::with_mean(mean_on_secs * NANOS_PER_SEC as f64);
                let off_dur = Exp::with_mean((mean_off_secs.max(1e-9)) * NANOS_PER_SEC as f64);
                let mut t = start_ns as f64;
                let mut on = true; // start in a burst: worst case for LIFO
                let mut phase_end = t + on_dur.sample(rng);
                while t < end as f64 {
                    if on {
                        let next = t + inter.sample(rng);
                        if next < phase_end && next < end as f64 {
                            out.push(next as u64);
                            t = next;
                        } else {
                            t = phase_end;
                            on = false;
                            phase_end = t + if mean_off_secs > 0.0 {
                                off_dur.sample(rng)
                            } else {
                                0.0
                            };
                        }
                    } else {
                        t = phase_end;
                        on = true;
                        phase_end = t + on_dur.sample(rng);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_converges() {
        let p = ArrivalProcess::Poisson {
            rate_per_sec: 1_000.0,
        };
        let mut rng = crate::rng(11);
        let arrivals = p.generate(0, 20 * NANOS_PER_SEC, &mut rng);
        let rate = arrivals.len() as f64 / 20.0;
        assert!((rate - 1_000.0).abs() < 30.0, "rate {rate}");
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        assert!(*arrivals.last().unwrap() < 20 * NANOS_PER_SEC);
    }

    #[test]
    fn paced_is_evenly_spaced() {
        let p = ArrivalProcess::Paced { rate_per_sec: 10.0 };
        let mut rng = crate::rng(12);
        let arrivals = p.generate(0, NANOS_PER_SEC, &mut rng);
        assert_eq!(arrivals.len(), 10);
        assert_eq!(arrivals[1] - arrivals[0], NANOS_PER_SEC / 10);
    }

    #[test]
    fn paced_respects_start_offset() {
        let p = ArrivalProcess::Paced { rate_per_sec: 4.0 };
        let mut rng = crate::rng(13);
        let arrivals = p.generate(5 * NANOS_PER_SEC, NANOS_PER_SEC, &mut rng);
        assert_eq!(arrivals[0], 5 * NANOS_PER_SEC);
        assert!(arrivals.iter().all(|&t| t >= 5 * NANOS_PER_SEC));
    }

    #[test]
    fn onoff_long_run_rate_matches_duty_cycle() {
        let p = ArrivalProcess::OnOffBurst {
            on_rate_per_sec: 2_000.0,
            mean_on_secs: 0.5,
            mean_off_secs: 1.5,
        };
        assert!((p.mean_rate() - 500.0).abs() < 1e-9);
        let mut rng = crate::rng(14);
        let arrivals = p.generate(0, 120 * NANOS_PER_SEC, &mut rng);
        let rate = arrivals.len() as f64 / 120.0;
        assert!((rate - 500.0).abs() < 100.0, "rate {rate}");
    }

    #[test]
    fn onoff_is_burstier_than_poisson() {
        // Compare the variance of per-100ms counts at equal mean rate.
        let window = NANOS_PER_SEC / 10;
        let count_var = |arrivals: &[u64]| {
            let buckets = 600usize;
            let mut counts = vec![0f64; buckets];
            for &a in arrivals {
                let b = (a / window) as usize;
                if b < buckets {
                    counts[b] += 1.0;
                }
            }
            hermes_metrics::welford::stddev_of(&counts)
        };
        let mut rng = crate::rng(15);
        let poisson = ArrivalProcess::Poisson {
            rate_per_sec: 500.0,
        }
        .generate(0, 60 * NANOS_PER_SEC, &mut rng);
        let bursty = ArrivalProcess::OnOffBurst {
            on_rate_per_sec: 2_000.0,
            mean_on_secs: 0.5,
            mean_off_secs: 1.5,
        }
        .generate(0, 60 * NANOS_PER_SEC, &mut rng);
        assert!(
            count_var(&bursty) > 2.0 * count_var(&poisson),
            "bursty {} vs poisson {}",
            count_var(&bursty),
            count_var(&poisson)
        );
    }

    #[test]
    fn empty_window_yields_no_arrivals() {
        let p = ArrivalProcess::Poisson {
            rate_per_sec: 100.0,
        };
        let mut rng = crate::rng(16);
        assert!(p.generate(0, 0, &mut rng).is_empty());
    }
}
