//! The workload data model consumed by the simulator.
//!
//! A [`Workload`] is a time-ordered list of [`ConnectionSpec`]s. Each
//! connection carries its flow identity (for reuseport hashing), its tenant
//! and port (for multi-tenant accounting), and a script of [`RequestSpec`]s:
//! when each request arrives relative to connection establishment, how many
//! I/O events it triggers, and how much worker CPU time each request costs.
//! Keeping requests scripted (rather than generated inside the simulator)
//! makes every experiment replayable and lets the *same* workload be run
//! under every dispatch mode — the comparison structure of Table 3.

use hermes_core::FlowKey;
use serde::{Deserialize, Serialize};

/// One application-layer request on a connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestSpec {
    /// When the request's first event becomes readable, relative to
    /// connection establishment (ns).
    pub start_offset_ns: u64,
    /// Total worker CPU time to process the request (ns) — the paper's
    /// "processing time", covering parsing/SSL/compression.
    pub service_ns: u64,
    /// Number of epoll events the request generates (≥1): header readable,
    /// body readable, upstream writable, ... Service time is split evenly
    /// across events.
    pub events: u32,
    /// Request size in bytes (Table 1's request-size dimension; drives
    /// buffer accounting, not CPU cost).
    pub size_bytes: u32,
}

impl RequestSpec {
    /// CPU time consumed by each of the request's events.
    pub fn service_per_event_ns(&self) -> u64 {
        self.service_ns / u64::from(self.events.max(1))
    }
}

/// One client connection through the LB.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConnectionSpec {
    /// SYN arrival time (ns from experiment start).
    pub arrival_ns: u64,
    /// Flow 4-tuple (gives the kernel its precomputed hash).
    pub flow: FlowKey,
    /// Owning tenant (dense id).
    pub tenant: u16,
    /// LB-side destination port (the tenant's rewritten Dport).
    pub port: u16,
    /// Scripted requests, sorted by `start_offset_ns`.
    pub requests: Vec<RequestSpec>,
    /// Connection closes this long after its last request completes; `None`
    /// means it closes immediately after the last request (short-lived).
    pub linger_ns: Option<u64>,
}

impl ConnectionSpec {
    /// Total scripted CPU demand of the connection (ns).
    pub fn total_service_ns(&self) -> u64 {
        self.requests.iter().map(|r| r.service_ns).sum()
    }

    /// Total scripted events.
    pub fn total_events(&self) -> u64 {
        self.requests.iter().map(|r| u64::from(r.events)).sum()
    }
}

/// A complete experiment input.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Workload {
    /// Human-readable name (appears in harness output).
    pub name: String,
    /// Connections sorted by `arrival_ns`.
    pub conns: Vec<ConnectionSpec>,
    /// Experiment horizon (ns): the simulator runs to this time even after
    /// the last arrival, letting queues drain.
    pub duration_ns: u64,
}

impl Workload {
    /// Create an empty workload with a horizon.
    pub fn new(name: impl Into<String>, duration_ns: u64) -> Self {
        Self {
            name: name.into(),
            conns: Vec::new(),
            duration_ns,
        }
    }

    /// Append a connection (kept sorted on [`seal`](Self::seal)).
    pub fn push(&mut self, conn: ConnectionSpec) {
        self.conns.push(conn);
    }

    /// Sort connections by arrival and validate invariants. Call once after
    /// generation; the simulator requires sealed workloads.
    pub fn seal(mut self) -> Self {
        self.conns.sort_by_key(|c| c.arrival_ns);
        for c in &self.conns {
            debug_assert!(
                c.requests
                    .windows(2)
                    .all(|w| w[0].start_offset_ns <= w[1].start_offset_ns),
                "requests must be sorted by start offset"
            );
        }
        self
    }

    /// Number of connections.
    pub fn connection_count(&self) -> usize {
        self.conns.len()
    }

    /// Total requests across connections.
    pub fn request_count(&self) -> usize {
        self.conns.iter().map(|c| c.requests.len()).sum()
    }

    /// Aggregate offered CPU load (total service time / horizon) — the
    /// utilization the workload would impose on a single worker.
    pub fn offered_load(&self) -> f64 {
        if self.duration_ns == 0 {
            return 0.0;
        }
        let total: u64 = self
            .conns
            .iter()
            .map(ConnectionSpec::total_service_ns)
            .sum();
        total as f64 / self.duration_ns as f64
    }

    /// Mean connections per second over the horizon.
    pub fn mean_cps(&self) -> f64 {
        if self.duration_ns == 0 {
            return 0.0;
        }
        self.conns.len() as f64 * hermes_metrics::NANOS_PER_SEC as f64 / self.duration_ns as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conn(arrival: u64, service: u64) -> ConnectionSpec {
        ConnectionSpec {
            arrival_ns: arrival,
            flow: FlowKey::new(1, 2, 3, 4),
            tenant: 0,
            port: 1000,
            requests: vec![RequestSpec {
                start_offset_ns: 0,
                service_ns: service,
                events: 2,
                size_bytes: 100,
            }],
            linger_ns: None,
        }
    }

    #[test]
    fn service_per_event_splits_evenly() {
        let r = RequestSpec {
            start_offset_ns: 0,
            service_ns: 100,
            events: 4,
            size_bytes: 0,
        };
        assert_eq!(r.service_per_event_ns(), 25);
        let degenerate = RequestSpec { events: 0, ..r };
        assert_eq!(degenerate.service_per_event_ns(), 100);
    }

    #[test]
    fn seal_sorts_by_arrival() {
        let mut w = Workload::new("t", 1_000);
        w.push(conn(500, 10));
        w.push(conn(100, 10));
        let w = w.seal();
        assert_eq!(w.conns[0].arrival_ns, 100);
        assert_eq!(w.connection_count(), 2);
        assert_eq!(w.request_count(), 2);
    }

    #[test]
    fn offered_load_is_service_over_horizon() {
        let mut w = Workload::new("t", 1_000);
        w.push(conn(0, 250));
        w.push(conn(10, 250));
        let w = w.seal();
        assert!((w.offered_load() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_cps_over_horizon() {
        let mut w = Workload::new("t", hermes_metrics::NANOS_PER_SEC);
        for i in 0..100 {
            w.push(conn(i, 1));
        }
        assert!((w.seal().mean_cps() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_degenerates_safely() {
        let w = Workload::new("t", 0);
        assert_eq!(w.offered_load(), 0.0);
        assert_eq!(w.mean_cps(), 0.0);
    }

    #[test]
    fn connection_totals() {
        let mut c = conn(0, 100);
        c.requests.push(RequestSpec {
            start_offset_ns: 50,
            service_ns: 40,
            events: 3,
            size_bytes: 10,
        });
        assert_eq!(c.total_service_ns(), 140);
        assert_eq!(c.total_events(), 5);
    }
}
