//! Region traffic profiles fitted to Table 1, and the Table 4 case mix.
//!
//! Table 1 gives request-size and processing-time percentiles for four
//! anonymized regions; Table 4 gives each region's mix of the four traffic
//! cases. A [`Region`] carries both, so harnesses can (a) regenerate
//! Table 1 by sampling the fitted distributions and (b) compose region-like
//! multi-tenant workloads weighted by the case mix.

use crate::cases::Case;
use crate::distr::{Distribution, LogNormal, Mixture};

/// Percentile triple as printed in Table 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// One paper region.
#[derive(Clone, Debug)]
pub struct Region {
    /// Region name as in the paper.
    pub name: &'static str,
    /// Table 1 request-size row (bytes).
    pub size_bytes: Percentiles,
    /// Table 1 processing-time row (milliseconds).
    pub proc_ms: Percentiles,
    /// Table 4 row: fraction of traffic in cases 1–4 (sums to 1).
    pub case_mix: [f64; 4],
    /// Region 3 serves WebSocket-heavy tenants: its P99 comes from a rare
    /// heavy component, not the body of the distribution.
    websocket_heavy: bool,
}

impl Region {
    /// The four regions of Table 1 / Table 4.
    pub fn all() -> [Region; 4] {
        [
            Region {
                name: "Region1",
                size_bytes: Percentiles {
                    p50: 243.0,
                    p90: 312.0,
                    p99: 2491.0,
                },
                proc_ms: Percentiles {
                    p50: 2.0,
                    p90: 9.0,
                    p99: 42.0,
                },
                case_mix: [0.1945, 0.0055, 0.6561, 0.1439],
                websocket_heavy: false,
            },
            Region {
                name: "Region2",
                size_bytes: Percentiles {
                    p50: 831.0,
                    p90: 3730.0,
                    p99: 10132.0,
                },
                proc_ms: Percentiles {
                    p50: 10.0,
                    p90: 77.0,
                    p99: 8190.0,
                },
                case_mix: [0.0077, 0.0783, 0.0927, 0.8213],
                websocket_heavy: false,
            },
            Region {
                name: "Region3",
                size_bytes: Percentiles {
                    p50: 566.0,
                    p90: 1951.0,
                    p99: 50879.0,
                },
                proc_ms: Percentiles {
                    p50: 3.0,
                    p90: 278.0,
                    p99: 49005.0,
                },
                case_mix: [0.066, 0.029, 0.608, 0.297],
                websocket_heavy: true,
            },
            Region {
                name: "Region4",
                size_bytes: Percentiles {
                    p50: 721.0,
                    p90: 1140.0,
                    p99: 4638.0,
                },
                proc_ms: Percentiles {
                    p50: 4.0,
                    p90: 14.0,
                    p99: 239.0,
                },
                case_mix: [0.0281, 0.0741, 0.8907, 0.0071],
                websocket_heavy: false,
            },
        ]
    }

    /// Fitted request-size distribution (bytes).
    pub fn size_distribution(&self) -> Box<dyn Distribution> {
        self.fit(self.size_bytes)
    }

    /// Fitted processing-time distribution (milliseconds).
    pub fn proc_time_distribution(&self) -> Box<dyn Distribution> {
        self.fit(self.proc_ms)
    }

    /// Fit a distribution to a percentile triple. The body (P50–P90) pins
    /// one lognormal; when the P99/P90 ratio is extreme (Region 3's
    /// WebSocket share, or Region 2's tail), a second heavy lognormal
    /// carries the last percentiles, mixed at 1.5 % so P50/P90 stay put —
    /// exactly the paper's explanation: "although WebSocket requests are
    /// large, each connection counts as one request, making their overall
    /// share small; hence, the P99 is high while P50 and P90 remain low."
    fn fit(&self, p: Percentiles) -> Box<dyn Distribution> {
        // Body fitted on P50/P90 (z90 ≈ 1.2816).
        let mu = p.p50.ln();
        let sigma = ((p.p90.ln() - mu) / 1.281_551_565_544_8).max(1e-6);
        let body = LogNormal::new(mu, sigma);
        let body_p99 = body.p99();
        if self.websocket_heavy || p.p99 / body_p99 > 3.0 {
            // Heavy component centred so the mixture's ~P99 lands near the
            // table value: with p_heavy = 0.015, the 99th percentile of the
            // mixture falls inside the heavy component's lower half.
            let heavy = LogNormal::from_p50_p99(p.p99, p.p99 * 8.0);
            Box::new(Mixture::new(Box::new(body), Box::new(heavy), 0.015))
        } else {
            // Single lognormal refitted on P50/P99 keeps the far tail honest.
            Box::new(LogNormal::from_p50_p99(p.p50, p.p99))
        }
    }

    /// Expected traffic-weighted case for one connection draw.
    pub fn sample_case(&self, rng: &mut crate::Rng) -> Case {
        use rand::RngExt as _;
        let u: f64 = rng.random();
        let mut acc = 0.0;
        for (i, &w) in self.case_mix.iter().enumerate() {
            acc += w;
            if u < acc {
                return Case::all()[i];
            }
        }
        Case::Case4
    }
}

/// Average case mix across the four regions (the Table 4 "Avg" column).
pub fn average_case_mix() -> [f64; 4] {
    let regions = Region::all();
    let mut avg = [0.0f64; 4];
    for r in &regions {
        for (a, &m) in avg.iter_mut().zip(r.case_mix.iter()) {
            *a += m / regions.len() as f64;
        }
    }
    avg
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_metrics::Summary;

    fn percentiles_of(d: &dyn Distribution, n: usize, seed: u64) -> (f64, f64, f64) {
        let mut rng = crate::rng(seed);
        let mut s = Summary::with_capacity(n);
        for _ in 0..n {
            s.record(d.sample(&mut rng));
        }
        (s.p50(), s.p90(), s.p99())
    }

    #[test]
    fn case_mixes_sum_to_one() {
        for r in Region::all() {
            let total: f64 = r.case_mix.iter().sum();
            assert!((total - 1.0).abs() < 1e-3, "{}: {total}", r.name);
        }
    }

    #[test]
    fn table4_average_matches_paper() {
        let avg = average_case_mix();
        // Paper Avg row: 7.41%, 4.67%, 56.19%, 31.73%.
        assert!((avg[0] - 0.0741).abs() < 0.001, "case1 avg {}", avg[0]);
        assert!((avg[1] - 0.0467).abs() < 0.001);
        assert!((avg[2] - 0.5619).abs() < 0.001);
        assert!((avg[3] - 0.3173).abs() < 0.001);
    }

    #[test]
    fn fitted_proc_time_matches_table1_p50() {
        for (i, r) in Region::all().iter().enumerate() {
            let d = r.proc_time_distribution();
            let (p50, _, _) = percentiles_of(d.as_ref(), 60_000, 100 + i as u64);
            let rel = (p50 - r.proc_ms.p50).abs() / r.proc_ms.p50;
            assert!(rel < 0.15, "{}: p50 {} vs {}", r.name, p50, r.proc_ms.p50);
        }
    }

    #[test]
    fn fitted_proc_time_tail_order_of_magnitude() {
        for (i, r) in Region::all().iter().enumerate() {
            let d = r.proc_time_distribution();
            let (_, _, p99) = percentiles_of(d.as_ref(), 120_000, 200 + i as u64);
            let ratio = p99 / r.proc_ms.p99;
            assert!(
                (0.3..3.5).contains(&ratio),
                "{}: p99 {} vs {} (ratio {ratio})",
                r.name,
                p99,
                r.proc_ms.p99
            );
        }
    }

    #[test]
    fn region3_p90_stays_low_despite_huge_p99() {
        // The mixture must not inflate the body: P90 within ~2x of table.
        let r = &Region::all()[2];
        let d = r.proc_time_distribution();
        let (p50, p90, _) = percentiles_of(d.as_ref(), 120_000, 300);
        assert!(p50 < 10.0, "p50 {p50}");
        assert!(p90 < 2.5 * r.proc_ms.p90, "p90 {p90}");
    }

    #[test]
    fn sample_case_follows_mix() {
        let r = &Region::all()[3]; // Region4: 89% case3
        let mut rng = crate::rng(55);
        let n = 20_000;
        let case3 = (0..n)
            .filter(|_| r.sample_case(&mut rng) == Case::Case3)
            .count();
        let share = case3 as f64 / n as f64;
        assert!((share - 0.8907).abs() < 0.02, "share {share}");
    }
}
