//! Multi-tenant traffic composition.
//!
//! §2.1: each tenant gets its own Dport(s); an LB device serves many
//! tenants whose traffic shares are heavily skewed (§7: top tenants carry
//! 40 %/28 %/22 % of a region). A [`TenantSet`] assembles per-tenant
//! [`TenantProfile`]s into one [`Workload`], drawing tenant identity per
//! connection from a Zipf law over tenant rank.

use crate::arrival::ArrivalProcess;
use crate::distr::{Distribution, Exp, Zipf};
use crate::spec::{ConnectionSpec, RequestSpec, Workload};
use hermes_core::FlowKey;
use std::sync::Arc;

/// Per-tenant traffic characteristics.
#[derive(Clone, Debug)]
pub struct TenantProfile {
    /// Display name.
    pub name: String,
    /// Request processing-time distribution (ns).
    pub service_ns: Arc<dyn Distribution>,
    /// Request size distribution (bytes).
    pub size_bytes: Arc<dyn Distribution>,
    /// Requests per connection (1 = short-lived HTTP; large = keep-alive /
    /// WebSocket-ish).
    pub requests_per_conn: Arc<dyn Distribution>,
    /// Gap between consecutive requests on a connection (ns).
    pub think_time_ns: Arc<dyn Distribution>,
    /// Events per request (epoll readiness notifications).
    pub events_per_request: u32,
    /// How long the connection lingers after its last request (ns); `None`
    /// closes immediately.
    pub linger_ns: Option<u64>,
}

impl TenantProfile {
    /// A plain short-lived HTTP profile with exponential service times.
    pub fn simple_http(mean_service_ns: f64) -> Self {
        Self {
            name: "http".into(),
            service_ns: Arc::new(Exp::with_mean(mean_service_ns)),
            size_bytes: Arc::new(Exp::with_mean(800.0)),
            requests_per_conn: Arc::new(crate::distr::Constant(1.0)),
            think_time_ns: Arc::new(crate::distr::Constant(0.0)),
            events_per_request: 2,
            linger_ns: None,
        }
    }
}

/// A set of tenants with Zipf-skewed traffic shares, each owning one port.
#[derive(Clone, Debug)]
pub struct TenantSet {
    tenants: Vec<TenantProfile>,
    skew: Zipf,
    /// First Dport; tenant `i` listens on `base_port + i`.
    base_port: u16,
    /// LB VIP used as the flow destination address.
    vip: u32,
}

impl TenantSet {
    /// Build a tenant set with Zipf exponent `skew_s` over tenant rank.
    pub fn new(tenants: Vec<TenantProfile>, skew_s: f64, base_port: u16) -> Self {
        assert!(!tenants.is_empty(), "need at least one tenant");
        let n = tenants.len();
        Self {
            tenants,
            skew: Zipf::new(n, skew_s),
            base_port,
            vip: 0x0aff_0001, // 10.255.0.1
        }
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// True when the set is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// The port assigned to tenant `i`.
    pub fn port_of(&self, tenant: usize) -> u16 {
        self.base_port + tenant as u16
    }

    /// Expected traffic share of tenant `i` (Zipf pmf of its rank).
    pub fn share_of(&self, tenant: usize) -> f64 {
        self.skew.pmf(tenant + 1)
    }

    /// Generate one connection arriving at `arrival_ns` for a
    /// Zipf-sampled tenant. `conn_seq` individualizes the flow 4-tuple.
    pub fn generate_connection(
        &self,
        arrival_ns: u64,
        conn_seq: u32,
        rng: &mut crate::Rng,
    ) -> ConnectionSpec {
        let tenant = self.skew.sample_index(rng);
        self.generate_connection_for(tenant, arrival_ns, conn_seq, rng)
    }

    /// Generate a connection for a specific tenant.
    pub fn generate_connection_for(
        &self,
        tenant: usize,
        arrival_ns: u64,
        conn_seq: u32,
        rng: &mut crate::Rng,
    ) -> ConnectionSpec {
        use rand::RngExt as _;
        let profile = &self.tenants[tenant];
        let n_requests = (profile.requests_per_conn.sample(rng).round() as usize).max(1);
        let mut requests = Vec::with_capacity(n_requests);
        let mut offset = 0u64;
        for i in 0..n_requests {
            if i > 0 {
                offset += profile.think_time_ns.sample(rng).max(0.0) as u64;
            }
            requests.push(RequestSpec {
                start_offset_ns: offset,
                service_ns: profile.service_ns.sample(rng).max(1.0) as u64,
                events: profile.events_per_request,
                size_bytes: profile.size_bytes.sample(rng).max(1.0) as u32,
            });
        }
        // Synthetic client identity: distinct src ip/port per connection so
        // reuseport hashing sees fresh tuples.
        let src_ip = 0x0a00_0000 | (conn_seq >> 8);
        let src_port = 1024u16.wrapping_add((conn_seq as u16).wrapping_mul(13));
        let port = self.port_of(tenant);
        ConnectionSpec {
            arrival_ns,
            flow: FlowKey::new(
                src_ip,
                src_port ^ (rng.random::<u16>() & 0x3ff),
                self.vip,
                port,
            ),
            tenant: tenant as u16,
            port,
            requests,
            linger_ns: profile.linger_ns,
        }
    }

    /// Build a full workload: arrivals from `process` over `duration_ns`,
    /// tenant drawn per connection.
    pub fn workload(
        &self,
        name: impl Into<String>,
        process: &ArrivalProcess,
        duration_ns: u64,
        rng: &mut crate::Rng,
    ) -> Workload {
        let mut w = Workload::new(name, duration_ns);
        for (seq, t) in process
            .generate(0, duration_ns, rng)
            .into_iter()
            .enumerate()
        {
            w.push(self.generate_connection(t, seq as u32, rng));
        }
        w.seal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distr::Constant;
    use hermes_metrics::NANOS_PER_SEC;

    fn two_tenants() -> TenantSet {
        TenantSet::new(
            vec![
                TenantProfile::simple_http(1_000_000.0),
                TenantProfile {
                    name: "heavy".into(),
                    service_ns: Arc::new(Constant(50_000_000.0)),
                    size_bytes: Arc::new(Constant(4_000.0)),
                    requests_per_conn: Arc::new(Constant(3.0)),
                    think_time_ns: Arc::new(Constant(1_000_000.0)),
                    events_per_request: 2,
                    linger_ns: Some(5 * NANOS_PER_SEC),
                },
            ],
            1.0,
            10_000,
        )
    }

    #[test]
    fn ports_are_per_tenant() {
        let ts = two_tenants();
        assert_eq!(ts.port_of(0), 10_000);
        assert_eq!(ts.port_of(1), 10_001);
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn shares_follow_zipf() {
        let ts = two_tenants();
        // s=1.0 over 2 ranks: shares 2/3 and 1/3.
        assert!((ts.share_of(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((ts.share_of(1) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn generated_connection_matches_profile() {
        let ts = two_tenants();
        let mut rng = crate::rng(21);
        let c = ts.generate_connection_for(1, 500, 7, &mut rng);
        assert_eq!(c.tenant, 1);
        assert_eq!(c.port, 10_001);
        assert_eq!(c.arrival_ns, 500);
        assert_eq!(c.requests.len(), 3);
        assert_eq!(c.requests[0].service_ns, 50_000_000);
        assert_eq!(c.linger_ns, Some(5 * NANOS_PER_SEC));
        // Think time spaces the scripted requests.
        assert_eq!(c.requests[1].start_offset_ns, 1_000_000);
        assert_eq!(c.requests[2].start_offset_ns, 2_000_000);
    }

    #[test]
    fn flows_are_distinct_across_connections() {
        let ts = two_tenants();
        let mut rng = crate::rng(22);
        let a = ts.generate_connection_for(0, 0, 1, &mut rng);
        let b = ts.generate_connection_for(0, 0, 2, &mut rng);
        assert_ne!(a.flow, b.flow);
    }

    #[test]
    fn workload_generation_end_to_end() {
        let ts = two_tenants();
        let mut rng = crate::rng(23);
        let w = ts.workload(
            "smoke",
            &ArrivalProcess::Poisson {
                rate_per_sec: 500.0,
            },
            2 * NANOS_PER_SEC,
            &mut rng,
        );
        assert!(w.connection_count() > 800 && w.connection_count() < 1_200);
        assert!(w
            .conns
            .windows(2)
            .all(|p| p[0].arrival_ns <= p[1].arrival_ns));
        // Tenant 0 (rank 1) should dominate per Zipf.
        let t0 = w.conns.iter().filter(|c| c.tenant == 0).count();
        assert!(t0 as f64 / w.connection_count() as f64 > 0.55);
    }

    #[test]
    #[should_panic(expected = "at least one tenant")]
    fn empty_tenant_set_rejected() {
        TenantSet::new(vec![], 1.0, 1);
    }
}
