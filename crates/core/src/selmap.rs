//! Userspace ↔ kernel synchronization cells.
//!
//! §5.4: scheduling results travel through a `BPF_MAP_TYPE_ARRAY` holding a
//! single int element (the bitmap) — atomic by construction, so concurrent
//! writers (every worker runs a scheduler) and the kernel reader need no
//! locks. The worker-to-socket mapping travels through a
//! `BPF_MAP_TYPE_REUSEPORT_SOCKARRAY`, populated once at program init.
//!
//! [`SelMap`] is the native stand-in used by the simulator and threaded
//! runtime; `hermes-ebpf` provides the bytecode-visible array map with the
//! same semantics, and the two are cross-checked in tests.

use crate::bitmap::WorkerBitmap;
use crate::sync::{AtomicU64, AtomicUsize, Ordering};
use crate::WorkerId;

/// The single-element "array map" carrying the selected-worker bitmap.
#[derive(Debug)]
pub struct SelMap {
    bits: AtomicU64,
    /// Number of `store`s performed — the paper's "call frequency of
    /// scheduler" observable (Fig. 14) falls out of this counter.
    updates: AtomicU64,
    /// Number of redundant syncs elided by [`SelMap::store_if_changed`].
    /// Kept separate from `updates` so the Fig. 14 observable still counts
    /// only the stores that actually reached the kernel-visible cell.
    skipped: AtomicU64,
}

impl SelMap {
    /// Create a map holding the empty bitmap (kernel will fall back to
    /// reuseport until the first sync).
    pub fn new() -> Self {
        Self {
            bits: AtomicU64::new(0),
            updates: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
        }
    }

    /// `BPF_MAP_UPDATE` — publish a scheduling decision.
    #[inline]
    pub fn store(&self, bitmap: WorkerBitmap) {
        self.bits.store(bitmap.0, Ordering::Release);
        self.updates.fetch_add(1, Ordering::Relaxed);
        hermes_trace::trace_count!(hermes_trace::CounterId::KernelBitmapSyncs);
    }

    /// Publish a scheduling decision only when it differs from what the
    /// kernel already sees. A steady-state scheduler recomputes the same
    /// bitmap on every loop iteration; re-storing it costs an atomic
    /// release, a counter bump, and cross-core cache-line traffic for no
    /// information. Returns `true` when the store was performed.
    ///
    /// The elided syncs land in [`SelMap::skipped_count`] rather than
    /// `updates`, keeping the Fig. 14 sync-frequency observable honest.
    #[inline]
    pub fn store_if_changed(&self, bitmap: WorkerBitmap) -> bool {
        if self.bits.load(Ordering::Relaxed) == bitmap.0 {
            self.skipped.fetch_add(1, Ordering::Relaxed);
            hermes_trace::trace_count!(hermes_trace::CounterId::BitmapSyncSkips);
            return false;
        }
        self.store(bitmap);
        true
    }

    /// `bpf_map_lookup_elem` — read the current decision (kernel side).
    #[inline]
    pub fn load(&self) -> WorkerBitmap {
        WorkerBitmap(self.bits.load(Ordering::Acquire))
    }

    /// Total number of updates so far.
    pub fn update_count(&self) -> u64 {
        self.updates.load(Ordering::Relaxed)
    }

    /// Redundant syncs elided by [`SelMap::store_if_changed`].
    pub fn skipped_count(&self) -> u64 {
        self.skipped.load(Ordering::Relaxed)
    }
}

impl Default for SelMap {
    fn default() -> Self {
        Self::new()
    }
}

/// The worker-id → socket mapping (`BPF_MAP_TYPE_REUSEPORT_SOCKARRAY`).
///
/// Socket identities here are opaque `usize` handles owned by whichever
/// substrate (simulator or runtime) registered them. Slots are atomically
/// swappable so a restarted worker can re-register its listening socket
/// without quiescing dispatch.
#[derive(Debug)]
pub struct SockArray {
    slots: Box<[AtomicUsize]>,
}

/// Sentinel for an unregistered slot.
const NO_SOCK: usize = usize::MAX;

impl SockArray {
    /// Create an array with `workers` empty slots.
    pub fn new(workers: usize) -> Self {
        let slots: Vec<AtomicUsize> = (0..workers).map(|_| AtomicUsize::new(NO_SOCK)).collect();
        Self {
            slots: slots.into_boxed_slice(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the array has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Register worker `id`'s listening socket handle.
    pub fn register(&self, id: WorkerId, sock: usize) {
        assert!(sock != NO_SOCK, "socket handle collides with sentinel");
        self.slots[id].store(sock, Ordering::Release);
    }

    /// Remove worker `id`'s socket (worker crash / drain).
    pub fn unregister(&self, id: WorkerId) {
        self.slots[id].store(NO_SOCK, Ordering::Release);
    }

    /// `bpf_sk_select_reuseport` target lookup: the socket handle for
    /// worker `id`, or `None` if unregistered (the kernel call would fail
    /// and dispatch falls back).
    #[inline]
    pub fn lookup(&self, id: WorkerId) -> Option<usize> {
        match self.slots.get(id)?.load(Ordering::Acquire) {
            NO_SOCK => None,
            s => Some(s),
        }
    }
}

#[cfg(all(test, loom))]
mod loom_tests {
    //! Exhaustive interleaving checks for the kernel-sync cell. These run
    //! only under `RUSTFLAGS="--cfg loom"` (see the loom lane in
    //! scripts/ci.sh). The property under test is §5.4's lock-freedom
    //! claim: concurrent scheduler publishes and the kernel-side reader
    //! need no locks, and `store_if_changed`'s elision is *invisible* to
    //! the reader — it only ever skips a store whose value the cell
    //! already holds.
    use super::*;
    use loom::sync::Arc;
    use loom::thread;

    /// Two writers race distinct bitmaps against a concurrent reader: the
    /// reader only ever observes empty or a published value (never a
    /// blend), and the cell settles on one of the two.
    #[test]
    fn concurrent_publishes_are_untorn_in_every_interleaving() {
        loom::model(|| {
            const A: u64 = 0b0110;
            const B: u64 = 0b1001;
            let m = Arc::new(SelMap::new());
            let w1 = {
                let m = Arc::clone(&m);
                thread::spawn(move || m.store_if_changed(WorkerBitmap(A)))
            };
            let w2 = {
                let m = Arc::clone(&m);
                thread::spawn(move || m.store_if_changed(WorkerBitmap(B)))
            };
            let seen = m.load().0;
            assert!(
                seen == 0 || seen == A || seen == B,
                "kernel reader saw a torn value {seen:#x}"
            );
            let s1 = w1.join().unwrap();
            let s2 = w2.join().unwrap();
            // Distinct values against an empty cell: neither store can be
            // elided, and the Fig. 14 observable counts both.
            assert!(s1 && s2, "distinct publishes must both store");
            assert_eq!(m.update_count(), 2);
            assert_eq!(m.skipped_count(), 0);
            let fin = m.load().0;
            assert!(fin == A || fin == B);
        });
    }

    /// A steady-state scheduler republishing the current bitmap races a
    /// fresh publish. Whether or not the redundant sync is elided, the
    /// reader's view is indistinguishable from always-store semantics, and
    /// the update/skip split accounts for every call exactly once.
    #[test]
    fn redundant_sync_elision_is_invisible_to_the_reader() {
        loom::model(|| {
            const A: u64 = 0b0110;
            const B: u64 = 0b0011;
            let m = Arc::new(SelMap::new());
            m.store(WorkerBitmap(A));
            let steady = {
                let m = Arc::clone(&m);
                thread::spawn(move || m.store_if_changed(WorkerBitmap(A)))
            };
            let fresh = {
                let m = Arc::clone(&m);
                thread::spawn(move || m.store_if_changed(WorkerBitmap(B)))
            };
            let seen = m.load().0;
            assert!(
                seen == A || seen == B,
                "reader saw a value nobody published: {seen:#x}"
            );
            let stored_a = steady.join().unwrap();
            let stored_b = fresh.join().unwrap();
            // The fresh value can never be elided: the cell never holds B
            // before its writer runs.
            assert!(stored_b, "fresh publish must reach the cell");
            // Every call is either a store or a skip — nothing vanishes.
            assert_eq!(m.update_count(), 2 + u64::from(stored_a));
            assert_eq!(m.skipped_count(), u64::from(!stored_a));
            let fin = m.load().0;
            assert!(fin == A || fin == B);
        });
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn selmap_store_load_round_trip() {
        let m = SelMap::new();
        assert!(m.load().is_empty());
        m.store(WorkerBitmap(0b1010));
        assert_eq!(m.load(), WorkerBitmap(0b1010));
        assert_eq!(m.update_count(), 1);
    }

    #[test]
    fn selmap_store_if_changed_elides_redundant_syncs() {
        let m = SelMap::new();
        assert!(m.store_if_changed(WorkerBitmap(0b0110)));
        // Steady state: same bitmap recomputed — no kernel-visible store.
        for _ in 0..10 {
            assert!(!m.store_if_changed(WorkerBitmap(0b0110)));
        }
        assert!(m.store_if_changed(WorkerBitmap(0b0011)));
        assert_eq!(m.load(), WorkerBitmap(0b0011));
        // Fig. 14 observable counts only real syncs; skips land separately.
        assert_eq!(m.update_count(), 2);
        assert_eq!(m.skipped_count(), 10);
    }

    #[test]
    fn selmap_concurrent_writers_last_value_wins() {
        // Multiple workers sync concurrently (§5.3.2); the cell must always
        // contain one of the written values, never a blend.
        let m = Arc::new(SelMap::new());
        let valid: Vec<u64> = (1..=8).map(|i| (1u64 << i) - 1).collect();
        let mut handles = Vec::new();
        for &v in &valid {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1_000 {
                    m.store(WorkerBitmap(v));
                }
            }));
        }
        let reader = {
            let m = Arc::clone(&m);
            let valid = valid.clone();
            std::thread::spawn(move || {
                for _ in 0..4_000 {
                    let seen = m.load().0;
                    assert!(seen == 0 || valid.contains(&seen), "torn value {seen:#x}");
                }
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        reader.join().unwrap();
        assert_eq!(m.update_count(), 8_000);
    }

    #[test]
    fn sockarray_register_lookup_unregister() {
        let a = SockArray::new(4);
        assert_eq!(a.len(), 4);
        assert_eq!(a.lookup(2), None);
        a.register(2, 777);
        assert_eq!(a.lookup(2), Some(777));
        a.unregister(2);
        assert_eq!(a.lookup(2), None);
        // Out-of-range lookups are None, not panics: the kernel-side program
        // may race a resize in a restarting deployment.
        assert_eq!(a.lookup(99), None);
    }

    #[test]
    #[should_panic(expected = "sentinel")]
    fn sockarray_rejects_sentinel_handle() {
        SockArray::new(1).register(0, usize::MAX);
    }
}
