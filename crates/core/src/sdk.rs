//! The embeddable worker SDK (§4.2).
//!
//! "Considering epoll's wide adoption, these modifications can also be
//! incorporated into event frameworks such as libevent and exposed to
//! third-party applications through an SDK." This module is that SDK: a
//! [`WorkerSession`] wraps one worker's slice of the Hermes machinery and
//! exposes exactly the hook points of Fig. 9, so an application's event
//! loop adds Hermes with five calls:
//!
//! ```text
//! loop {
//!     session.loop_top(now);                 // shm_avail_update
//!     let events = epoll_wait(...);
//!     session.events_fetched(events.len());  // shm_busy_count(+n)
//!     for e in events {
//!         match e {
//!             Accept  => { accept(); session.conn_opened(); }
//!             Close   => { close();  session.conn_closed(); }
//!             _       => handle(e),
//!         }
//!         session.event_handled();           // shm_busy_count(-1)
//!     }
//!     session.schedule_and_sync(now);        // Algorithm 1 + map update
//! }
//! ```
//!
//! The sync target is pluggable ([`SyncTarget`]) so the same session works
//! against the native [`SelMap`] cell, the eBPF-backed map, or anything
//! else that accepts a bitmap.

use crate::bitmap::WorkerBitmap;
use crate::sched::{SchedConfig, SchedDecision, Scheduler};
use crate::selmap::SelMap;
use crate::wst::{SnapshotCache, Wst};
use crate::WorkerId;
use std::sync::Arc;

/// Where scheduling decisions are published.
pub trait SyncTarget: Send + Sync {
    /// Publish a bitmap (the `BPF_MAP_UPDATE` of Algorithm 1).
    fn sync(&self, bitmap: WorkerBitmap);
}

impl SyncTarget for SelMap {
    fn sync(&self, bitmap: WorkerBitmap) {
        // Steady-state schedulers recompute the same bitmap every loop;
        // publishing it again would be a pure cache-line ping. The elision
        // is counted separately so Fig. 14's sync frequency stays honest.
        self.store_if_changed(bitmap);
    }
}

impl<F: Fn(WorkerBitmap) + Send + Sync> SyncTarget for F {
    fn sync(&self, bitmap: WorkerBitmap) {
        self(bitmap);
    }
}

/// One worker's handle onto the shared Hermes state: the five Fig. 9
/// hooks plus `schedule_and_sync`.
pub struct WorkerSession<T: SyncTarget> {
    wst: Arc<Wst>,
    id: WorkerId,
    scheduler: Scheduler,
    target: Arc<T>,
    sched_calls: u64,
    /// Epoch-tagged snapshot buffer: scheduling allocates nothing, and an
    /// unchanged table skips the snapshot copy entirely.
    snap_cache: SnapshotCache,
    /// Timestamp of the most recent schedule call, so a split
    /// [`sync_only`](Self::sync_only) can stamp its publish event with the
    /// loop iteration's time rather than 0.
    last_now_ns: u64,
    /// Flight-recorder lane for this session's publish events. Defaults to
    /// the worker id; grouped deployments override it with the flattened
    /// global id so lanes stay unique across groups.
    trace_lane: u32,
}

impl<T: SyncTarget> WorkerSession<T> {
    /// Create a session for worker `id` over the shared table, publishing
    /// to `target`.
    pub fn new(wst: Arc<Wst>, id: WorkerId, config: SchedConfig, target: Arc<T>) -> Self {
        assert!(id < wst.workers(), "worker id out of range");
        Self {
            wst,
            id,
            scheduler: Scheduler::new(config),
            target,
            sched_calls: 0,
            snap_cache: SnapshotCache::new(),
            last_now_ns: 0,
            trace_lane: id as u32,
        }
    }

    /// Override the flight-recorder lane for this session's publish events
    /// (grouped deployments: `hermes_trace::grouped_lane(group, size, id)`).
    pub fn with_trace_lane(mut self, lane: u32) -> Self {
        self.trace_lane = lane;
        self
    }

    /// This worker's id.
    pub fn id(&self) -> WorkerId {
        self.id
    }

    /// The shared table (e.g. for spawning sibling sessions).
    pub fn wst(&self) -> &Arc<Wst> {
        &self.wst
    }

    /// Fig. 9 line 12: record event-loop entry.
    #[inline]
    pub fn loop_top(&self, now_ns: u64) {
        self.wst.worker(self.id).enter_loop(now_ns);
    }

    /// Fig. 9 line 14: `epoll_wait` returned `n` events.
    #[inline]
    pub fn events_fetched(&self, n: usize) {
        self.wst.worker(self.id).add_pending(n as i64);
    }

    /// Fig. 9 line 18: one event handled.
    #[inline]
    pub fn event_handled(&self) {
        self.wst.worker(self.id).event_done();
    }

    /// Fig. 9 line 25: connection accepted.
    #[inline]
    pub fn conn_opened(&self) {
        self.wst.worker(self.id).conn_delta(1);
    }

    /// Fig. 9 line 37: connection closed.
    #[inline]
    pub fn conn_closed(&self) {
        self.wst.worker(self.id).conn_delta(-1);
    }

    /// Fig. 9 line 20: run Algorithm 1 over the whole table and publish
    /// the bitmap. Returns the decision for the caller's own telemetry.
    pub fn schedule_and_sync(&mut self, now_ns: u64) -> SchedDecision {
        let decision = self
            .scheduler
            .schedule_into(&self.wst, now_ns, &mut self.snap_cache);
        self.last_now_ns = now_ns;
        self.target.sync(decision.bitmap);
        self.publish_trace(now_ns, decision.bitmap);
        self.sched_calls += 1;
        decision
    }

    /// Scheduler invocations so far (Fig. 14 observable).
    pub fn sched_calls(&self) -> u64 {
        self.sched_calls
    }

    /// The scheduling half of [`schedule_and_sync`](Self::schedule_and_sync)
    /// alone — for callers that instrument the scheduler and the map sync
    /// separately (Table 5's "Scheduler" vs "System call" columns). Takes
    /// `&mut self` for the session's snapshot cache.
    pub fn schedule_only(&mut self, now_ns: u64) -> SchedDecision {
        self.last_now_ns = now_ns;
        self.scheduler
            .schedule_into(&self.wst, now_ns, &mut self.snap_cache)
    }

    /// The publish half: push a previously computed bitmap.
    pub fn sync_only(&mut self, bitmap: WorkerBitmap) {
        self.target.sync(bitmap);
        self.publish_trace(self.last_now_ns, bitmap);
        self.sched_calls += 1;
    }

    /// Flight-recorder hook for a bitmap publish: records the bitmap next
    /// to the WST epoch it was derived from, so a trace can answer "how far
    /// did the kernel's view lag behind the table". Compiles out without
    /// the `trace` feature.
    fn publish_trace(&self, now_ns: u64, bitmap: WorkerBitmap) {
        hermes_trace::trace_event!(
            now_ns,
            hermes_trace::EventKind::BitmapPublish,
            self.trace_lane,
            bitmap.0,
            self.wst.epoch()
        );
        hermes_trace::trace_count!(hermes_trace::CounterId::BitmapPublishes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn hooks_drive_the_shared_table() {
        let wst = Arc::new(Wst::new(2));
        let sel = Arc::new(SelMap::new());
        let s = WorkerSession::new(Arc::clone(&wst), 0, SchedConfig::default(), sel);
        s.loop_top(1_000);
        s.events_fetched(3);
        s.event_handled();
        s.conn_opened();
        let snap = wst.worker(0).snapshot();
        assert_eq!(snap.loop_enter_ns, 1_000);
        assert_eq!(snap.pending_events, 2);
        assert_eq!(snap.connections, 1);
        s.conn_closed();
        assert_eq!(wst.worker(0).snapshot().connections, 0);
    }

    #[test]
    fn schedule_and_sync_publishes_to_target() {
        let wst = Arc::new(Wst::new(3));
        for w in 0..3 {
            wst.worker(w).enter_loop(1_000_000);
        }
        wst.worker(2).conn_delta(100);
        let sel = Arc::new(SelMap::new());
        let mut s = WorkerSession::new(
            Arc::clone(&wst),
            0,
            SchedConfig::default(),
            Arc::clone(&sel),
        );
        let d = s.schedule_and_sync(1_100_000);
        assert_eq!(sel.load(), d.bitmap);
        assert!(!sel.load().contains(2));
        assert_eq!(s.sched_calls(), 1);
    }

    #[test]
    fn closure_sync_target() {
        let hits = Arc::new(AtomicU64::new(0));
        let h2 = Arc::clone(&hits);
        let target = Arc::new(move |_bm: WorkerBitmap| {
            h2.fetch_add(1, Ordering::Relaxed);
        });
        let wst = Arc::new(Wst::new(1));
        wst.worker(0).enter_loop(1);
        let mut s = WorkerSession::new(wst, 0, SchedConfig::default(), target);
        s.schedule_and_sync(100);
        s.schedule_and_sync(200);
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn sibling_sessions_share_one_table() {
        let wst = Arc::new(Wst::new(4));
        let sel = Arc::new(SelMap::new());
        let sessions: Vec<_> = (0..4)
            .map(|w| {
                WorkerSession::new(
                    Arc::clone(&wst),
                    w,
                    SchedConfig::default(),
                    Arc::clone(&sel),
                )
            })
            .collect();
        for s in &sessions {
            s.loop_top(1_000_000);
            s.conn_opened();
        }
        // Any session's scheduler sees everyone's status.
        let mut s0 = sessions.into_iter().next().unwrap();
        let d = s0.schedule_and_sync(1_000_500);
        assert_eq!(d.bitmap, WorkerBitmap::all(4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_worker() {
        let wst = Arc::new(Wst::new(2));
        let sel = Arc::new(SelMap::new());
        WorkerSession::new(wst, 2, SchedConfig::default(), sel);
    }
}
