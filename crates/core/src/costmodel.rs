//! Unit-cost model for the Fig. 12 experiment.
//!
//! §6.2 ("Unit cost of cloud infra"): before Hermes, worker hangs forced a
//! conservative scale-out threshold — new VMs were added whenever device CPU
//! exceeded 30 %. Eliminating hangs allowed raising the safety threshold to
//! 40 %, so the same traffic needs fewer VMs. The paper reports *unit cost*
//! (total infra cost / total traffic), normalized, decreasing monthly after
//! the release with a peak reduction of 18.9 %.
//!
//! This module captures that autoscaling arithmetic so the Fig. 12 harness
//! can regenerate the curve from a traffic growth series.

/// Autoscaling/cost parameters for one region's L7 LB fleet.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Traffic one VM can carry at 100 % CPU (arbitrary traffic units).
    pub vm_capacity: f64,
    /// Monthly cost of one VM (arbitrary currency units).
    pub vm_monthly_cost: f64,
    /// Scale-out safety threshold: VMs are provisioned so average CPU stays
    /// at or below this fraction (0.30 before Hermes, 0.40 after).
    pub safety_threshold: f64,
    /// Minimum VMs kept for AZ-level disaster recovery regardless of load.
    pub min_vms: u32,
}

impl CostModel {
    /// The paper's pre-Hermes configuration (30 % threshold).
    pub fn before_hermes() -> Self {
        Self {
            vm_capacity: 100.0,
            vm_monthly_cost: 1.0,
            safety_threshold: 0.30,
            min_vms: 2,
        }
    }

    /// The paper's post-Hermes configuration (40 % threshold).
    pub fn after_hermes() -> Self {
        Self {
            safety_threshold: 0.40,
            ..Self::before_hermes()
        }
    }

    /// Before/after pair *calibrated to a measured fleet*: `vm_capacity`
    /// is set so carrying `traffic` at the pre-Hermes 30 % threshold
    /// takes exactly `devices` VMs — i.e. month 0 of the Fig. 12 series
    /// reproduces the region as deployed (363 devices in the paper, the
    /// measured fleet RPS from `BENCH_fleet.json` in our reproduction).
    pub fn calibrated_pair(traffic: f64, devices: u32) -> (Self, Self) {
        assert!(
            traffic > 0.0 && traffic.is_finite(),
            "traffic must be positive and finite"
        );
        assert!(devices >= 1, "need at least one device");
        // The 1e-9 relative nudge keeps `ceil` from landing on devices+1
        // when the division round-trips a hair above the exact quotient.
        let before = Self {
            vm_capacity: traffic / (devices as f64 * 0.30) * (1.0 + 1e-9),
            ..Self::before_hermes()
        };
        let after = Self {
            safety_threshold: 0.40,
            ..before
        };
        debug_assert_eq!(before.vms_required(traffic), devices.max(before.min_vms));
        (before, after)
    }

    /// VMs required to carry `traffic` while keeping average CPU at or
    /// below the safety threshold.
    pub fn vms_required(&self, traffic: f64) -> u32 {
        assert!(
            traffic >= 0.0 && traffic.is_finite(),
            "traffic must be finite"
        );
        assert!(
            self.safety_threshold > 0.0 && self.safety_threshold <= 1.0,
            "safety threshold must be a fraction"
        );
        let effective_capacity = self.vm_capacity * self.safety_threshold;
        let needed = (traffic / effective_capacity).ceil() as u32;
        needed.max(self.min_vms)
    }

    /// Unit cost for a month carrying `traffic`: total VM cost divided by
    /// traffic (the paper's normalized metric). Returns 0 for zero traffic.
    pub fn unit_cost(&self, traffic: f64) -> f64 {
        if traffic <= 0.0 {
            return 0.0;
        }
        self.vms_required(traffic) as f64 * self.vm_monthly_cost / traffic
    }

    /// Unit-cost series over a monthly traffic trajectory.
    pub fn unit_cost_series(&self, monthly_traffic: &[f64]) -> Vec<f64> {
        monthly_traffic.iter().map(|&t| self.unit_cost(t)).collect()
    }
}

/// Peak relative unit-cost reduction of `after` vs `before` over a traffic
/// trajectory (the paper's "peak reduction of 18.9 %").
pub fn peak_reduction(before: &CostModel, after: &CostModel, monthly_traffic: &[f64]) -> f64 {
    monthly_traffic
        .iter()
        .filter(|&&t| t > 0.0)
        .map(|&t| {
            let b = before.unit_cost(t);
            let a = after.unit_cost(t);
            (b - a) / b
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_count_respects_threshold_and_floor() {
        let m = CostModel::before_hermes();
        // 100-unit VMs at 30%: 30 effective units per VM.
        assert_eq!(m.vms_required(0.0), 2); // DR floor
        assert_eq!(m.vms_required(30.0), 2);
        assert_eq!(m.vms_required(90.0), 3);
        assert_eq!(m.vms_required(91.0), 4);
    }

    #[test]
    fn higher_threshold_needs_fewer_vms() {
        let before = CostModel::before_hermes();
        let after = CostModel::after_hermes();
        for traffic in [50.0, 120.0, 300.0, 1_000.0, 5_000.0] {
            assert!(after.vms_required(traffic) <= before.vms_required(traffic));
        }
        // Asymptotically 30/40 = 75% of the VMs, i.e. 25% fewer.
        let t = 1.0e6;
        let ratio = after.vms_required(t) as f64 / before.vms_required(t) as f64;
        assert!((ratio - 0.75).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn unit_cost_decreases_with_scale() {
        // Rounding granularity amortizes away as traffic grows.
        let m = CostModel::after_hermes();
        let small = m.unit_cost(45.0);
        let large = m.unit_cost(4_000.0);
        assert!(large < small);
    }

    #[test]
    fn zero_traffic_unit_cost_is_zero() {
        assert_eq!(CostModel::after_hermes().unit_cost(0.0), 0.0);
    }

    #[test]
    fn peak_reduction_approaches_threshold_ratio() {
        let before = CostModel::before_hermes();
        let after = CostModel::after_hermes();
        let traffic: Vec<f64> = (1..=24).map(|m| 200.0 * 1.15f64.powi(m)).collect();
        let peak = peak_reduction(&before, &after, &traffic);
        // Ideal reduction is 1 - 0.75 = 25%; ceil-quantization of VM counts
        // scatters the realized monthly reduction around that value.
        assert!(peak > 0.15 && peak <= 0.35, "peak {peak}");
    }

    #[test]
    fn unit_cost_series_matches_pointwise() {
        let m = CostModel::after_hermes();
        let tr = [100.0, 200.0];
        let series = m.unit_cost_series(&tr);
        assert_eq!(series, vec![m.unit_cost(100.0), m.unit_cost(200.0)]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_traffic() {
        CostModel::after_hermes().vms_required(f64::NAN);
    }

    #[test]
    fn calibrated_pair_reproduces_the_deployed_fleet_at_month_zero() {
        // The paper's region: 363 devices. Whatever traffic the fleet
        // measured, the pre-Hermes model must provision exactly 363 VMs
        // for it, and the post-Hermes model 30/40 = 75% of that.
        for traffic in [1_000.0, 224_102.0, 900_000.0] {
            let (before, after) = CostModel::calibrated_pair(traffic, 363);
            assert_eq!(before.vms_required(traffic), 363);
            let a = after.vms_required(traffic);
            assert!((272..=273).contains(&a), "after {a}");
            assert!(after.unit_cost(traffic) < before.unit_cost(traffic));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn calibrated_pair_rejects_zero_traffic() {
        CostModel::calibrated_pair(0.0, 363);
    }
}
