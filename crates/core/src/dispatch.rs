//! Kernel-side connection dispatch (Algorithm 2), native reference
//! implementation.
//!
//! For each incoming SYN the reuseport group's attached program:
//!
//! 1. loads the userspace bitmap from the array map,
//! 2. counts available workers `n`; if `n <= 1` it returns *fallback* and
//!    the kernel keeps its default hash-based reuseport selection (this is
//!    the overload guard of §5.3.2's two-stage filtering),
//! 3. otherwise scales the precomputed 4-tuple hash into `1..=n` with
//!    `reciprocal_scale` and picks the Nth set bit — fine-grained filtering
//!    that spreads new connections *across* the coarse candidate set instead
//!    of hammering one worker.
//!
//! `hermes-ebpf` executes the same logic as verified bytecode;
//! [`ConnDispatcher::select`] is the semantics oracle it is tested against.

use crate::bitmap::{WorkerBitmap, MAX_WORKERS_PER_GROUP};
use crate::hash::reciprocal_scale;
use crate::WorkerId;

/// Outcome of a dispatch decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DispatchOutcome {
    /// Hermes selected this worker from the userspace bitmap.
    Directed(WorkerId),
    /// Too few candidates — fall back to default reuseport hashing over all
    /// workers.
    Fallback(WorkerId),
}

impl DispatchOutcome {
    /// The chosen worker regardless of path.
    pub fn worker(&self) -> WorkerId {
        match *self {
            DispatchOutcome::Directed(w) | DispatchOutcome::Fallback(w) => w,
        }
    }

    /// True when the userspace bitmap directed the choice.
    pub fn is_directed(&self) -> bool {
        matches!(self, DispatchOutcome::Directed(_))
    }
}

/// The eBPF dispatch program's decision procedure, natively.
///
/// ```
/// use hermes_core::{ConnDispatcher, WorkerBitmap};
/// let d = ConnDispatcher::new(8);
/// let bm = WorkerBitmap::from_workers([2, 5]);
/// let out = d.dispatch(bm, 0xDEAD_BEEF);
/// assert!(out.is_directed());
/// assert!(bm.contains(out.worker()));
/// // A singleton candidate set trips the n>1 guard and falls back:
/// assert!(!d.dispatch(WorkerBitmap::from_workers([2]), 1).is_directed());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ConnDispatcher {
    /// Total workers in the reuseport group (fallback hashes over these).
    workers: usize,
    /// Candidate-count threshold: the bitmap is honoured only when
    /// `count > min_candidates` (Algorithm 2 line 4 uses `n > 1`).
    min_candidates: u32,
}

impl ConnDispatcher {
    /// Dispatcher for a reuseport group of `workers` sockets with the
    /// paper's `n > 1` guard.
    pub fn new(workers: usize) -> Self {
        Self::with_min_candidates(workers, 1)
    }

    /// Dispatcher with a custom candidate guard (ablations).
    pub fn with_min_candidates(workers: usize, min_candidates: u32) -> Self {
        assert!(
            (1..=MAX_WORKERS_PER_GROUP).contains(&workers),
            "1..=64 workers per group"
        );
        Self {
            workers,
            min_candidates,
        }
    }

    /// Number of workers in the group.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Full dispatch: Hermes selection with reuseport fallback.
    /// `hash` is the kernel-precomputed 4-tuple hash.
    pub fn dispatch(&self, bitmap: WorkerBitmap, hash: u32) -> DispatchOutcome {
        let out = match self.select(bitmap, hash) {
            Some(w) => DispatchOutcome::Directed(w),
            None => DispatchOutcome::Fallback(self.reuseport_select(hash)),
        };
        hermes_trace::trace_count!(if out.is_directed() {
            hermes_trace::CounterId::DirectedDispatches
        } else {
            hermes_trace::CounterId::FallbackDispatches
        });
        out
    }

    /// Dispatch a whole arrival burst against one bitmap load: the mask,
    /// candidate count, and guard are evaluated **once per batch** instead
    /// of once per connection, then each hash takes only the rank-select
    /// (or fallback scale). Decisions are appended to `out` in order and
    /// are identical to per-hash [`dispatch`](Self::dispatch) calls with
    /// the same bitmap.
    pub fn dispatch_batch(
        &self,
        bitmap: WorkerBitmap,
        hashes: &[u32],
        out: &mut Vec<DispatchOutcome>,
    ) {
        let masked = WorkerBitmap(bitmap.0 & WorkerBitmap::all(self.workers).0);
        let n = masked.count();
        out.reserve(hashes.len());
        hermes_trace::trace_count!(hermes_trace::CounterId::DispatchBatches);
        hermes_trace::trace_count!(hermes_trace::CounterId::BatchedFlows, hashes.len());
        if n <= self.min_candidates {
            out.extend(
                hashes
                    .iter()
                    .map(|&h| DispatchOutcome::Fallback(self.reuseport_select(h))),
            );
            hermes_trace::trace_count!(hermes_trace::CounterId::FallbackDispatches, hashes.len());
            return;
        }
        out.extend(hashes.iter().map(|&h| {
            let nth = reciprocal_scale(h, n) + 1;
            let id = masked
                .nth_set_bit(nth)
                .expect("nth in 1..=count must exist");
            DispatchOutcome::Directed(id)
        }));
        hermes_trace::trace_count!(hermes_trace::CounterId::DirectedDispatches, hashes.len());
    }

    /// Algorithm 2 lines 2–7: Hermes selection only. `None` means the guard
    /// failed and the caller must fall back.
    pub fn select(&self, bitmap: WorkerBitmap, hash: u32) -> Option<WorkerId> {
        // Mask out ids beyond this group (defensive: userspace bugs must
        // not direct traffic at nonexistent sockets).
        let masked = WorkerBitmap(bitmap.0 & WorkerBitmap::all(self.workers).0);
        let n = masked.count();
        if n <= self.min_candidates {
            return None;
        }
        let nth = reciprocal_scale(hash, n) + 1; // 1..=n
        let id = masked
            .nth_set_bit(nth)
            .expect("nth in 1..=count must exist");
        Some(id)
    }

    /// The kernel's default reuseport selection: hash modulo the socket
    /// count (Linux uses `reciprocal_scale` over the group size).
    pub fn reuseport_select(&self, hash: u32) -> WorkerId {
        reciprocal_scale(hash, self.workers as u32) as WorkerId
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn directs_within_bitmap() {
        let d = ConnDispatcher::new(8);
        let bm = WorkerBitmap::from_workers([1, 3, 6]);
        for h in 0..1_000u32 {
            let out = d.dispatch(bm, h.wrapping_mul(2654435761));
            assert!(out.is_directed());
            assert!(bm.contains(out.worker()));
        }
    }

    #[test]
    fn single_candidate_falls_back() {
        // §5.3.2: passing a single worker would funnel all new connections
        // to it, so the guard requires n > 1.
        let d = ConnDispatcher::new(8);
        let bm = WorkerBitmap::from_workers([5]);
        let out = d.dispatch(bm, 42);
        assert!(!out.is_directed());
        assert!(out.worker() < 8);
    }

    #[test]
    fn empty_bitmap_falls_back() {
        let d = ConnDispatcher::new(4);
        let out = d.dispatch(WorkerBitmap::EMPTY, 7);
        assert!(!out.is_directed());
    }

    #[test]
    fn out_of_group_bits_are_masked() {
        let d = ConnDispatcher::new(4);
        // Bits 10 and 20 point past the group; only 1 and 2 are real.
        let bm = WorkerBitmap::from_workers([1, 2, 10, 20]);
        for h in 0..200u32 {
            let out = d.dispatch(bm, h.wrapping_mul(0x9E3779B9));
            assert!(out.is_directed());
            assert!([1usize, 2].contains(&out.worker()));
        }
    }

    #[test]
    fn directed_selection_is_balanced() {
        // reciprocal_scale over a healthy bitmap should spread roughly
        // uniformly across candidates.
        let d = ConnDispatcher::new(16);
        let bm = WorkerBitmap::from_workers([0, 2, 4, 8, 15]);
        let mut counts = std::collections::HashMap::new();
        let n = 50_000u32;
        for i in 0..n {
            let h = crate::hash::jhash_3words(i, 77, 0, 3);
            *counts.entry(d.dispatch(bm, h).worker()).or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 5);
        for (&w, &c) in &counts {
            let share = c as f64 / n as f64;
            assert!((share - 0.2).abs() < 0.02, "worker {w} share {share}");
        }
    }

    #[test]
    fn batch_dispatch_matches_per_connection() {
        let d = ConnDispatcher::new(32);
        let hashes: Vec<u32> = (0..512u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        for bm in [
            WorkerBitmap::EMPTY,
            WorkerBitmap::from_workers([5]),
            WorkerBitmap::from_workers([1, 9, 17, 30]),
            WorkerBitmap::all(32),
            WorkerBitmap(u64::MAX), // out-of-group bits must mask identically
        ] {
            let mut batch = Vec::new();
            d.dispatch_batch(bm, &hashes, &mut batch);
            assert_eq!(batch.len(), hashes.len());
            for (h, got) in hashes.iter().zip(&batch) {
                assert_eq!(*got, d.dispatch(bm, *h), "bitmap {:#x} hash {h:#x}", bm.0);
            }
        }
    }

    #[test]
    fn custom_guard_threshold() {
        let d = ConnDispatcher::with_min_candidates(8, 3);
        let three = WorkerBitmap::from_workers([0, 1, 2]);
        let four = WorkerBitmap::from_workers([0, 1, 2, 3]);
        assert!(d.select(three, 9).is_none());
        assert!(d.select(four, 9).is_some());
    }

    #[test]
    fn same_flow_hash_is_sticky() {
        // A given 4-tuple hash always lands on the same worker for a fixed
        // bitmap — dispatch is deterministic, there is no per-packet RNG.
        let d = ConnDispatcher::new(32);
        let bm = WorkerBitmap::all(32);
        assert_eq!(d.dispatch(bm, 12345), d.dispatch(bm, 12345));
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn rejects_oversized_group() {
        ConnDispatcher::new(65);
    }

    proptest! {
        /// Whatever the bitmap and hash, dispatch returns a valid worker.
        #[test]
        fn dispatch_total_and_in_range(bits: u64, hash: u32, workers in 1usize..=64) {
            let d = ConnDispatcher::new(workers);
            let out = d.dispatch(WorkerBitmap(bits), hash);
            prop_assert!(out.worker() < workers);
            if out.is_directed() {
                prop_assert!(WorkerBitmap(bits).contains(out.worker()));
            }
        }

        /// With >1 candidates the directed path is always taken and always
        /// lands inside the candidate set.
        #[test]
        fn directed_iff_guard_passes(bits: u64, hash: u32) {
            let d = ConnDispatcher::new(64);
            let bm = WorkerBitmap(bits);
            let out = d.dispatch(bm, hash);
            prop_assert_eq!(out.is_directed(), bm.count() > 1);
        }
    }
}
