//! Proactive service degradation and exception handling.
//!
//! Appendix C, exception case 1: when a worker hangs with established
//! connections pinned to it, Hermes cannot migrate those connections
//! (worker↔core affinity), so it *resets a subset* of them — the clients
//! reconnect and land on healthy workers via the ordinary Hermes dispatch.
//! Exception case 2: when *all* workers are saturated, node-local
//! scheduling is moot; a phased cluster-level response (scale out → scale
//! up → new VM groups) takes over. Both policies are represented here so
//! the simulator and harnesses exercise them.

use crate::WorkerId;

/// Decision produced by the degradation policy for one worker.
#[derive(Clone, Debug, PartialEq)]
pub enum DegradeAction {
    /// Healthy: no action.
    None,
    /// Reset `count` of the worker's connections (TCP RST) so clients
    /// re-establish and get rescheduled to healthy workers.
    ResetConnections {
        /// Target worker.
        worker: WorkerId,
        /// How many connections to shed.
        count: usize,
    },
}

/// Tuning for the single-worker-hang degradation policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegradeConfig {
    /// CPU utilization above which a worker is considered persistently
    /// overloaded (the paper acts "when a CPU core remains highly
    /// utilized").
    pub cpu_high_watermark: f64,
    /// Consecutive observation intervals the watermark must hold before
    /// acting (debounce: one busy loop is not a hang).
    pub sustain_intervals: u32,
    /// Fraction of the worker's connections to shed per action.
    pub shed_fraction: f64,
    /// Never shed below this many retained connections per action call.
    pub min_shed: usize,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        Self {
            cpu_high_watermark: 0.95,
            sustain_intervals: 3,
            shed_fraction: 0.25,
            min_shed: 1,
        }
    }
}

/// Per-worker degradation state machine.
#[derive(Clone, Debug)]
pub struct DegradeMonitor {
    config: DegradeConfig,
    /// Consecutive high-CPU observations per worker.
    hot_streak: Vec<u32>,
}

impl DegradeMonitor {
    /// Monitor for `workers` workers.
    pub fn new(workers: usize, config: DegradeConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.cpu_high_watermark),
            "watermark must be a utilization fraction"
        );
        assert!(
            (0.0..=1.0).contains(&config.shed_fraction),
            "shed fraction must be in [0,1]"
        );
        Self {
            config,
            hot_streak: vec![0; workers],
        }
    }

    /// Feed one observation interval: worker `w` ran at `cpu` utilization
    /// and currently holds `connections`. Returns the action to take now.
    pub fn observe(&mut self, w: WorkerId, cpu: f64, connections: usize) -> DegradeAction {
        if cpu >= self.config.cpu_high_watermark {
            self.hot_streak[w] += 1;
        } else {
            self.hot_streak[w] = 0;
        }
        if self.hot_streak[w] >= self.config.sustain_intervals && connections > 0 {
            // Act, then restart the debounce so shedding is paced.
            self.hot_streak[w] = 0;
            let count = ((connections as f64 * self.config.shed_fraction).ceil() as usize)
                .max(self.config.min_shed)
                .min(connections);
            DegradeAction::ResetConnections { worker: w, count }
        } else {
            DegradeAction::None
        }
    }

    /// Current streak (for tests/monitoring).
    pub fn streak(&self, w: WorkerId) -> u32 {
        self.hot_streak[w]
    }
}

/// Appendix C exception case 2: phased response when the whole device
/// saturates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ScalePhase {
    /// Phase 1: redistribute the instance's traffic across existing VM
    /// groups (scale out).
    RedistributeAcrossGroups,
    /// Phase 2: add VMs to the instance's existing groups (scale up).
    AddVmsToGroups,
    /// Phase 3: provision new VM groups for overflow traffic.
    NewVmGroups,
}

/// Pick the scaling phase after `failed_phases` earlier phases did not
/// relieve the overload.
pub fn scale_phase(failed_phases: u32) -> ScalePhase {
    match failed_phases {
        0 => ScalePhase::RedistributeAcrossGroups,
        1 => ScalePhase::AddVmsToGroups,
        _ => ScalePhase::NewVmGroups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_worker_never_degraded() {
        let mut m = DegradeMonitor::new(2, DegradeConfig::default());
        for _ in 0..100 {
            assert_eq!(m.observe(0, 0.5, 1_000), DegradeAction::None);
        }
        assert_eq!(m.streak(0), 0);
    }

    #[test]
    fn sustained_overload_sheds_connections() {
        let mut m = DegradeMonitor::new(1, DegradeConfig::default());
        assert_eq!(m.observe(0, 0.99, 100), DegradeAction::None);
        assert_eq!(m.observe(0, 0.99, 100), DegradeAction::None);
        let act = m.observe(0, 0.99, 100);
        assert_eq!(
            act,
            DegradeAction::ResetConnections {
                worker: 0,
                count: 25
            }
        );
        // Debounce restarts after acting.
        assert_eq!(m.observe(0, 0.99, 75), DegradeAction::None);
    }

    #[test]
    fn streak_resets_on_recovery() {
        let mut m = DegradeMonitor::new(1, DegradeConfig::default());
        m.observe(0, 0.99, 10);
        m.observe(0, 0.99, 10);
        m.observe(0, 0.10, 10); // recovered
        assert_eq!(m.streak(0), 0);
        assert_eq!(m.observe(0, 0.99, 10), DegradeAction::None);
    }

    #[test]
    fn shed_count_bounds() {
        let cfg = DegradeConfig {
            sustain_intervals: 1,
            shed_fraction: 0.5,
            min_shed: 3,
            ..DegradeConfig::default()
        };
        let mut m = DegradeMonitor::new(1, cfg);
        // min_shed floor applies to small pools but never exceeds the pool.
        assert_eq!(
            m.observe(0, 1.0, 2),
            DegradeAction::ResetConnections {
                worker: 0,
                count: 2
            }
        );
        assert_eq!(
            m.observe(0, 1.0, 100),
            DegradeAction::ResetConnections {
                worker: 0,
                count: 50
            }
        );
    }

    #[test]
    fn no_connections_means_no_action() {
        let cfg = DegradeConfig {
            sustain_intervals: 1,
            ..DegradeConfig::default()
        };
        let mut m = DegradeMonitor::new(1, cfg);
        assert_eq!(m.observe(0, 1.0, 0), DegradeAction::None);
    }

    #[test]
    fn scale_phases_escalate() {
        assert_eq!(scale_phase(0), ScalePhase::RedistributeAcrossGroups);
        assert_eq!(scale_phase(1), ScalePhase::AddVmsToGroups);
        assert_eq!(scale_phase(2), ScalePhase::NewVmGroups);
        assert_eq!(scale_phase(9), ScalePhase::NewVmGroups);
        assert!(ScalePhase::RedistributeAcrossGroups < ScalePhase::NewVmGroups);
    }

    #[test]
    #[should_panic(expected = "watermark")]
    fn rejects_bad_watermark() {
        DegradeMonitor::new(
            1,
            DegradeConfig {
                cpu_high_watermark: 1.5,
                ..DegradeConfig::default()
            },
        );
    }
}
