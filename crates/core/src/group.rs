//! Two-level worker-group scheduling.
//!
//! §7 ("Will the 64-bit atomic limit Hermes on 128-core servers?"): workers
//! are partitioned into groups of at most 64. A new connection first picks a
//! group by hashing (level 1), then the ordinary Hermes bitmap logic picks a
//! worker within the group (level 2). Each group has its own independent WST
//! and selection map, updated only by its own workers.
//!
//! Appendix C (Fig. A6) generalizes the same structure into a cache-locality
//! knob: hashing the *DIP & Dport* (instead of the full 4-tuple) at level 1
//! pins a tenant's traffic to one group while level 2 still balances within
//! it. One group ⇒ standard Hermes; one worker per group ⇒ pure reuseport.

use crate::bitmap::WorkerBitmap;
use crate::dispatch::{ConnDispatcher, DispatchOutcome};
use crate::hash::{jhash_3words, reciprocal_scale, FlowKey};
use crate::sched::{SchedConfig, SchedDecision, Scheduler};
use crate::selmap::SelMap;
use crate::wst::Wst;
use crate::WorkerId;
use std::sync::Arc;

/// What the level-1 group hash covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GroupBy {
    /// Hash the full 4-tuple (§7): connections spray across groups.
    FlowHash,
    /// Hash destination IP and port only (Appendix C, Fig. A6): a tenant's
    /// traffic sticks to one group for cache locality.
    DipDport,
}

/// A worker's position under two-level scheduling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroupedWorker {
    /// Group index.
    pub group: usize,
    /// Worker index within the group.
    pub local: WorkerId,
    /// Flattened global worker id (`group * group_size + local`).
    pub global: WorkerId,
}

/// One worker group: its own WST, selection map, and dispatcher.
#[derive(Debug)]
pub struct Group {
    wst: Arc<Wst>,
    sel: Arc<SelMap>,
    dispatcher: ConnDispatcher,
}

impl Group {
    /// The group's worker status table.
    pub fn wst(&self) -> &Arc<Wst> {
        &self.wst
    }

    /// The group's selection map.
    pub fn sel(&self) -> &Arc<SelMap> {
        &self.sel
    }

    /// Workers in this group.
    pub fn workers(&self) -> usize {
        self.dispatcher.workers()
    }
}

/// Two-level Hermes scheduler/dispatcher over `groups * group_size`
/// workers.
#[derive(Debug)]
pub struct GroupScheduler {
    groups: Vec<Group>,
    group_size: usize,
    group_by: GroupBy,
    scheduler: Scheduler,
}

impl GroupScheduler {
    /// Partition `total_workers` into groups of `group_size` (last group may
    /// be smaller), with level-1 hashing per `group_by`.
    pub fn new(
        total_workers: usize,
        group_size: usize,
        group_by: GroupBy,
        config: SchedConfig,
    ) -> Self {
        assert!(total_workers >= 1, "need at least one worker");
        assert!(
            (1..=crate::MAX_WORKERS_PER_GROUP).contains(&group_size),
            "group size must be 1..=64"
        );
        let mut groups = Vec::new();
        let mut remaining = total_workers;
        while remaining > 0 {
            let n = remaining.min(group_size);
            groups.push(Group {
                wst: Arc::new(Wst::new(n)),
                sel: Arc::new(SelMap::new()),
                dispatcher: ConnDispatcher::new(n),
            });
            remaining -= n;
        }
        Self {
            groups,
            group_size,
            group_by,
            scheduler: Scheduler::new(config),
        }
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Total workers across all groups.
    pub fn total_workers(&self) -> usize {
        self.groups.iter().map(Group::workers).sum()
    }

    /// Borrow group `g`.
    pub fn group(&self, g: usize) -> &Group {
        &self.groups[g]
    }

    /// Resolve a global worker id into its group coordinates.
    pub fn locate(&self, global: WorkerId) -> GroupedWorker {
        assert!(global < self.total_workers(), "worker id out of range");
        GroupedWorker {
            group: global / self.group_size,
            local: global % self.group_size,
            global,
        }
    }

    /// Level-1 group selection for a flow.
    pub fn group_for(&self, flow: &FlowKey) -> usize {
        let h = match self.group_by {
            GroupBy::FlowHash => flow.hash(),
            GroupBy::DipDport => jhash_3words(flow.dst_ip, flow.dst_port as u32, 0, 0x4a6f_9d21),
        };
        reciprocal_scale(h, self.groups.len() as u32) as usize
    }

    /// Run the per-group scheduler for group `g` at `now_ns` and sync its
    /// bitmap. Returns the decision (mirrors `schedule_and_sync`). The sync
    /// is elided when the recomputed bitmap matches what the kernel already
    /// sees ([`SelMap::store_if_changed`]) — in steady state, per-group
    /// schedulers converge and re-publish nothing.
    pub fn schedule_group(&self, g: usize, now_ns: u64) -> SchedDecision {
        let group = &self.groups[g];
        let decision = self.scheduler.schedule(&group.wst, now_ns);
        group.sel.store_if_changed(decision.bitmap);
        decision
    }

    /// Run the scheduler for every group (used by harnesses; production
    /// workers each schedule only their own group).
    pub fn schedule_all(&self, now_ns: u64) {
        for g in 0..self.groups.len() {
            self.schedule_group(g, now_ns);
        }
    }

    /// Full two-level dispatch for a new connection.
    pub fn dispatch(&self, flow: &FlowKey) -> (usize, DispatchOutcome) {
        let g = self.group_for(flow);
        let group = &self.groups[g];
        let out = group.dispatcher.dispatch(group.sel.load(), flow.hash());
        (g, out)
    }

    /// Flatten a `(group, local)` outcome into the global worker id.
    pub fn global_id(&self, group: usize, local: WorkerId) -> WorkerId {
        group * self.group_size + local
    }

    /// Union of per-group bitmaps lifted to global ids — monitoring helper.
    pub fn global_selected(&self) -> Vec<WorkerId> {
        let mut out = Vec::new();
        for (g, group) in self.groups.iter().enumerate() {
            let bm: WorkerBitmap = group.sel.load();
            out.extend(bm.iter().map(|local| self.global_id(g, local)));
        }
        out
    }
}

/// Most groups a [`GroupedConnDispatcher`] will shard across. Bounds the
/// per-batch stack state (one bitmap + count per group); 64 groups of 64
/// workers is 4096 workers — far past the paper's 256-worker scale point.
pub const MAX_DISPATCH_GROUPS: usize = 64;

/// One grouped dispatch decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroupedDispatch {
    /// Level-1 group the flow hashed into.
    pub group: usize,
    /// Level-2 outcome within that group (local worker id).
    pub outcome: DispatchOutcome,
    /// Flattened global worker id (`group * group_size + local`).
    pub global: WorkerId,
}

impl GroupedDispatch {
    /// True when the userspace bitmap directed the level-2 choice.
    pub fn is_directed(&self) -> bool {
        self.outcome.is_directed()
    }
}

/// Kernel-side two-level dispatch over per-group selection maps — the
/// native counterpart of the grouped eBPF program, shaped for bursts.
///
/// Holds one `(SelMap, ConnDispatcher)` pair per group. A new connection
/// picks its group by `reciprocal_scale` over the flow hash (level 1), then
/// runs Algorithm 2 against that group's bitmap (level 2).
/// [`dispatch_batch`](Self::dispatch_batch) loads every group's bitmap,
/// mask, and candidate count **once per burst**, so per-connection work is
/// one scale plus one rank-select regardless of group count.
#[derive(Debug)]
pub struct GroupedConnDispatcher {
    groups: Vec<(Arc<SelMap>, ConnDispatcher)>,
    group_size: usize,
}

impl GroupedConnDispatcher {
    /// Dispatcher over `sel_maps.len()` groups. `sizes[g]` workers live in
    /// group `g`; `group_size` is the flattening stride (the nominal full
    /// group width, so a ragged last group still gets contiguous global
    /// ids).
    pub fn new(sel_maps: Vec<Arc<SelMap>>, sizes: &[usize], group_size: usize) -> Self {
        assert_eq!(sel_maps.len(), sizes.len(), "one size per group");
        assert!(
            (1..=MAX_DISPATCH_GROUPS).contains(&sel_maps.len()),
            "1..=64 dispatch groups"
        );
        let groups = sel_maps
            .into_iter()
            .zip(sizes)
            .map(|(sel, &n)| (sel, ConnDispatcher::new(n)))
            .collect();
        Self { groups, group_size }
    }

    /// Dispatcher sharing a [`GroupScheduler`]'s selection maps: scheduling
    /// decisions published by the scheduler's workers are immediately
    /// visible to dispatch, with no copies and no locks.
    pub fn from_scheduler(gs: &GroupScheduler) -> Self {
        let sel_maps = (0..gs.group_count())
            .map(|g| Arc::clone(gs.group(g).sel()))
            .collect();
        let sizes: Vec<usize> = (0..gs.group_count())
            .map(|g| gs.group(g).workers())
            .collect();
        Self::new(sel_maps, &sizes, gs.group_size)
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Group `g`'s selection map — the publish side for that group's
    /// scheduler (workers call [`SelMap::store_if_changed`] on it).
    pub fn sel(&self, g: usize) -> &Arc<SelMap> {
        &self.groups[g].0
    }

    /// Flattening stride (nominal workers per group).
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Total workers across all groups.
    pub fn total_workers(&self) -> usize {
        self.groups.iter().map(|(_, d)| d.workers()).sum()
    }

    /// Level-1 group selection for a flow hash.
    #[inline]
    pub fn group_for(&self, hash: u32) -> usize {
        reciprocal_scale(hash, self.groups.len() as u32) as usize
    }

    /// Full two-level dispatch for one connection.
    pub fn dispatch(&self, hash: u32) -> GroupedDispatch {
        let g = self.group_for(hash);
        let (sel, d) = &self.groups[g];
        let outcome = d.dispatch(sel.load(), hash);
        let out = GroupedDispatch {
            group: g,
            outcome,
            global: g * self.group_size + outcome.worker(),
        };
        hermes_trace::trace_count!(hermes_trace::CounterId::GroupDispatches);
        out
    }

    /// Dispatch a whole arrival burst: every group's bitmap is loaded and
    /// masked **once**, then each hash costs one group scale plus one
    /// rank-select (or the reuseport fallback). Decisions are appended to
    /// `out` in arrival order and are identical to per-hash
    /// [`dispatch`](Self::dispatch) calls under a stable bitmap.
    pub fn dispatch_batch(&self, hashes: &[u32], out: &mut Vec<GroupedDispatch>) {
        let mut masked = [WorkerBitmap::EMPTY; MAX_DISPATCH_GROUPS];
        let mut counts = [0u32; MAX_DISPATCH_GROUPS];
        for (g, (sel, d)) in self.groups.iter().enumerate() {
            let m = WorkerBitmap(sel.load().0 & WorkerBitmap::all(d.workers()).0);
            masked[g] = m;
            counts[g] = m.count();
        }
        out.reserve(hashes.len());
        hermes_trace::trace_count!(hermes_trace::CounterId::DispatchBatches);
        hermes_trace::trace_count!(hermes_trace::CounterId::GroupDispatches, hashes.len());
        for &h in hashes {
            let g = self.group_for(h);
            let outcome = if counts[g] > 1 {
                let nth = reciprocal_scale(h, counts[g]) + 1;
                let local = masked[g]
                    .nth_set_bit(nth)
                    .expect("nth in 1..=count must exist");
                DispatchOutcome::Directed(local)
            } else {
                DispatchOutcome::Fallback(self.groups[g].1.reuseport_select(h))
            };
            out.push(GroupedDispatch {
                group: g,
                outcome,
                global: g * self.group_size + outcome.worker(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SchedConfig {
        SchedConfig {
            hang_threshold_ns: 100,
            ..SchedConfig::default()
        }
    }

    #[test]
    fn partitions_workers_into_groups() {
        let gs = GroupScheduler::new(130, 64, GroupBy::FlowHash, cfg());
        assert_eq!(gs.group_count(), 3);
        assert_eq!(gs.total_workers(), 130);
        assert_eq!(gs.group(0).workers(), 64);
        assert_eq!(gs.group(2).workers(), 2);
    }

    #[test]
    fn locate_round_trips() {
        let gs = GroupScheduler::new(130, 64, GroupBy::FlowHash, cfg());
        let w = gs.locate(100);
        assert_eq!(w.group, 1);
        assert_eq!(w.local, 36);
        assert_eq!(gs.global_id(w.group, w.local), 100);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn locate_rejects_out_of_range() {
        GroupScheduler::new(10, 5, GroupBy::FlowHash, cfg()).locate(10);
    }

    #[test]
    fn flowhash_sprays_groups_dipdport_pins_them() {
        let spray = GroupScheduler::new(128, 32, GroupBy::FlowHash, cfg());
        let pin = GroupScheduler::new(128, 32, GroupBy::DipDport, cfg());
        let mut spray_groups = std::collections::HashSet::new();
        let mut pin_groups = std::collections::HashSet::new();
        // Same tenant (DIP/Dport), many client flows.
        for i in 0..500u32 {
            let flow = FlowKey::new(0x0a00_0000 + i, 1024 + i as u16, 0xc0a8_0001, 8443);
            spray_groups.insert(spray.group_for(&flow));
            pin_groups.insert(pin.group_for(&flow));
        }
        assert_eq!(pin_groups.len(), 1, "DipDport must pin tenant to a group");
        assert!(
            spray_groups.len() > 1,
            "FlowHash must spread a tenant across groups"
        );
    }

    #[test]
    fn dispatch_honours_group_bitmaps() {
        let gs = GroupScheduler::new(8, 4, GroupBy::FlowHash, cfg());
        // Bring all workers up, overload worker local=0 of each group.
        for g in 0..2 {
            for w in 0..4 {
                gs.group(g).wst().worker(w).enter_loop(1_000);
            }
            gs.group(g).wst().worker(0).conn_delta(1_000);
        }
        gs.schedule_all(1_010);
        for i in 0..300u32 {
            let flow = FlowKey::new(i, i as u16, 7, 443);
            let (g, out) = gs.dispatch(&flow);
            assert!(out.is_directed());
            assert_ne!(out.worker(), 0, "overloaded worker selected in group {g}");
        }
    }

    #[test]
    fn degenerate_configs_match_paper_claims() {
        // One group ⇒ standard Hermes (single WST covering everyone).
        let hermes = GroupScheduler::new(32, 32, GroupBy::DipDport, cfg());
        assert_eq!(hermes.group_count(), 1);
        // One worker per group ⇒ reduces to reuseport: every group has a
        // single candidate, the n>1 guard always fails, selection is pure
        // level-1 hashing.
        let reuseport = GroupScheduler::new(8, 1, GroupBy::FlowHash, cfg());
        for g in 0..8 {
            reuseport.group(g).wst().worker(0).enter_loop(1_000);
        }
        reuseport.schedule_all(1_010);
        let flow = FlowKey::new(1, 2, 3, 4);
        let (_, out) = reuseport.dispatch(&flow);
        assert!(!out.is_directed(), "single-worker groups must fall back");
    }

    #[test]
    fn schedule_group_elides_steady_state_syncs() {
        let gs = GroupScheduler::new(8, 4, GroupBy::FlowHash, cfg());
        for g in 0..2 {
            for w in 0..4 {
                gs.group(g).wst().worker(w).enter_loop(1_000);
            }
        }
        // First pass publishes; nine steady-state repeats publish nothing.
        for round in 0..10 {
            gs.schedule_all(1_010 + round);
        }
        for g in 0..2 {
            assert_eq!(gs.group(g).sel().update_count(), 1, "group {g}");
            assert_eq!(gs.group(g).sel().skipped_count(), 9, "group {g}");
        }
        // A load change re-publishes exactly once more.
        gs.group(1).wst().worker(0).conn_delta(1_000);
        gs.schedule_all(1_030);
        assert_eq!(gs.group(0).sel().update_count(), 1);
        assert_eq!(gs.group(1).sel().update_count(), 2);
    }

    #[test]
    fn grouped_dispatcher_batch_matches_single_and_scheduler() {
        let gs = GroupScheduler::new(16, 4, GroupBy::FlowHash, cfg());
        for g in 0..4 {
            for w in 0..4 {
                gs.group(g).wst().worker(w).enter_loop(1_000);
            }
            gs.group(g).wst().worker(1).conn_delta(1_000);
        }
        gs.schedule_all(1_010);
        let d = GroupedConnDispatcher::from_scheduler(&gs);
        assert_eq!(d.group_count(), 4);
        assert_eq!(d.total_workers(), 16);
        let hashes: Vec<u32> = (0..512u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        let mut batch = Vec::new();
        d.dispatch_batch(&hashes, &mut batch);
        assert_eq!(batch.len(), hashes.len());
        for (&h, got) in hashes.iter().zip(&batch) {
            // Batch == single-shot == the scheduler's own two-level path.
            assert_eq!(*got, d.dispatch(h), "hash {h:#x}");
            assert_eq!(got.group, reciprocal_scale(h, 4) as usize);
            assert_eq!(got.global, got.group * 4 + got.outcome.worker());
            assert!(got.is_directed());
            assert_ne!(got.outcome.worker(), 1, "overloaded worker selected");
        }
    }

    #[test]
    fn grouped_dispatcher_falls_back_per_group() {
        let gs = GroupScheduler::new(8, 4, GroupBy::FlowHash, cfg());
        // Only group 0 schedules; group 1's bitmap stays empty.
        for w in 0..4 {
            gs.group(0).wst().worker(w).enter_loop(1_000);
        }
        gs.schedule_all(1_010);
        let d = GroupedConnDispatcher::from_scheduler(&gs);
        let mut batch = Vec::new();
        let hashes: Vec<u32> = (0..256u32).map(|i| i.wrapping_mul(0x517C_C1B7)).collect();
        d.dispatch_batch(&hashes, &mut batch);
        for out in &batch {
            match out.group {
                0 => assert!(out.is_directed()),
                _ => assert!(!out.is_directed(), "empty bitmap must fall back"),
            }
            assert!(out.outcome.worker() < 4);
        }
    }

    #[test]
    fn global_selected_lifts_local_ids() {
        let gs = GroupScheduler::new(6, 3, GroupBy::FlowHash, cfg());
        for g in 0..2 {
            for w in 0..3 {
                gs.group(g).wst().worker(w).enter_loop(1_000);
            }
        }
        gs.schedule_all(1_010);
        let mut sel = gs.global_selected();
        sel.sort_unstable();
        assert_eq!(sel, vec![0, 1, 2, 3, 4, 5]);
    }
}
