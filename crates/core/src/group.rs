//! Two-level worker-group scheduling.
//!
//! §7 ("Will the 64-bit atomic limit Hermes on 128-core servers?"): workers
//! are partitioned into groups of at most 64. A new connection first picks a
//! group by hashing (level 1), then the ordinary Hermes bitmap logic picks a
//! worker within the group (level 2). Each group has its own independent WST
//! and selection map, updated only by its own workers.
//!
//! Appendix C (Fig. A6) generalizes the same structure into a cache-locality
//! knob: hashing the *DIP & Dport* (instead of the full 4-tuple) at level 1
//! pins a tenant's traffic to one group while level 2 still balances within
//! it. One group ⇒ standard Hermes; one worker per group ⇒ pure reuseport.

use crate::bitmap::WorkerBitmap;
use crate::dispatch::{ConnDispatcher, DispatchOutcome};
use crate::hash::{jhash_3words, reciprocal_scale, FlowKey};
use crate::sched::{SchedConfig, SchedDecision, Scheduler};
use crate::selmap::SelMap;
use crate::wst::Wst;
use crate::WorkerId;
use std::sync::Arc;

/// What the level-1 group hash covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GroupBy {
    /// Hash the full 4-tuple (§7): connections spray across groups.
    FlowHash,
    /// Hash destination IP and port only (Appendix C, Fig. A6): a tenant's
    /// traffic sticks to one group for cache locality.
    DipDport,
}

/// A worker's position under two-level scheduling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroupedWorker {
    /// Group index.
    pub group: usize,
    /// Worker index within the group.
    pub local: WorkerId,
    /// Flattened global worker id (`group * group_size + local`).
    pub global: WorkerId,
}

/// One worker group: its own WST, selection map, and dispatcher.
#[derive(Debug)]
pub struct Group {
    wst: Arc<Wst>,
    sel: Arc<SelMap>,
    dispatcher: ConnDispatcher,
}

impl Group {
    /// The group's worker status table.
    pub fn wst(&self) -> &Arc<Wst> {
        &self.wst
    }

    /// The group's selection map.
    pub fn sel(&self) -> &Arc<SelMap> {
        &self.sel
    }

    /// Workers in this group.
    pub fn workers(&self) -> usize {
        self.dispatcher.workers()
    }
}

/// Two-level Hermes scheduler/dispatcher over `groups * group_size`
/// workers.
#[derive(Debug)]
pub struct GroupScheduler {
    groups: Vec<Group>,
    group_size: usize,
    group_by: GroupBy,
    scheduler: Scheduler,
}

impl GroupScheduler {
    /// Partition `total_workers` into groups of `group_size` (last group may
    /// be smaller), with level-1 hashing per `group_by`.
    pub fn new(
        total_workers: usize,
        group_size: usize,
        group_by: GroupBy,
        config: SchedConfig,
    ) -> Self {
        assert!(total_workers >= 1, "need at least one worker");
        assert!(
            (1..=crate::MAX_WORKERS_PER_GROUP).contains(&group_size),
            "group size must be 1..=64"
        );
        let mut groups = Vec::new();
        let mut remaining = total_workers;
        while remaining > 0 {
            let n = remaining.min(group_size);
            groups.push(Group {
                wst: Arc::new(Wst::new(n)),
                sel: Arc::new(SelMap::new()),
                dispatcher: ConnDispatcher::new(n),
            });
            remaining -= n;
        }
        Self {
            groups,
            group_size,
            group_by,
            scheduler: Scheduler::new(config),
        }
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Total workers across all groups.
    pub fn total_workers(&self) -> usize {
        self.groups.iter().map(Group::workers).sum()
    }

    /// Borrow group `g`.
    pub fn group(&self, g: usize) -> &Group {
        &self.groups[g]
    }

    /// Resolve a global worker id into its group coordinates.
    pub fn locate(&self, global: WorkerId) -> GroupedWorker {
        assert!(global < self.total_workers(), "worker id out of range");
        GroupedWorker {
            group: global / self.group_size,
            local: global % self.group_size,
            global,
        }
    }

    /// Level-1 group selection for a flow.
    pub fn group_for(&self, flow: &FlowKey) -> usize {
        let h = match self.group_by {
            GroupBy::FlowHash => flow.hash(),
            GroupBy::DipDport => jhash_3words(flow.dst_ip, flow.dst_port as u32, 0, 0x4a6f_9d21),
        };
        reciprocal_scale(h, self.groups.len() as u32) as usize
    }

    /// Run the per-group scheduler for group `g` at `now_ns` and sync its
    /// bitmap. Returns the decision (mirrors `schedule_and_sync`).
    pub fn schedule_group(&self, g: usize, now_ns: u64) -> SchedDecision {
        let group = &self.groups[g];
        let decision = self.scheduler.schedule(&group.wst, now_ns);
        group.sel.store(decision.bitmap);
        decision
    }

    /// Run the scheduler for every group (used by harnesses; production
    /// workers each schedule only their own group).
    pub fn schedule_all(&self, now_ns: u64) {
        for g in 0..self.groups.len() {
            self.schedule_group(g, now_ns);
        }
    }

    /// Full two-level dispatch for a new connection.
    pub fn dispatch(&self, flow: &FlowKey) -> (usize, DispatchOutcome) {
        let g = self.group_for(flow);
        let group = &self.groups[g];
        let out = group.dispatcher.dispatch(group.sel.load(), flow.hash());
        (g, out)
    }

    /// Flatten a `(group, local)` outcome into the global worker id.
    pub fn global_id(&self, group: usize, local: WorkerId) -> WorkerId {
        group * self.group_size + local
    }

    /// Union of per-group bitmaps lifted to global ids — monitoring helper.
    pub fn global_selected(&self) -> Vec<WorkerId> {
        let mut out = Vec::new();
        for (g, group) in self.groups.iter().enumerate() {
            let bm: WorkerBitmap = group.sel.load();
            out.extend(bm.iter().map(|local| self.global_id(g, local)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SchedConfig {
        SchedConfig {
            hang_threshold_ns: 100,
            ..SchedConfig::default()
        }
    }

    #[test]
    fn partitions_workers_into_groups() {
        let gs = GroupScheduler::new(130, 64, GroupBy::FlowHash, cfg());
        assert_eq!(gs.group_count(), 3);
        assert_eq!(gs.total_workers(), 130);
        assert_eq!(gs.group(0).workers(), 64);
        assert_eq!(gs.group(2).workers(), 2);
    }

    #[test]
    fn locate_round_trips() {
        let gs = GroupScheduler::new(130, 64, GroupBy::FlowHash, cfg());
        let w = gs.locate(100);
        assert_eq!(w.group, 1);
        assert_eq!(w.local, 36);
        assert_eq!(gs.global_id(w.group, w.local), 100);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn locate_rejects_out_of_range() {
        GroupScheduler::new(10, 5, GroupBy::FlowHash, cfg()).locate(10);
    }

    #[test]
    fn flowhash_sprays_groups_dipdport_pins_them() {
        let spray = GroupScheduler::new(128, 32, GroupBy::FlowHash, cfg());
        let pin = GroupScheduler::new(128, 32, GroupBy::DipDport, cfg());
        let mut spray_groups = std::collections::HashSet::new();
        let mut pin_groups = std::collections::HashSet::new();
        // Same tenant (DIP/Dport), many client flows.
        for i in 0..500u32 {
            let flow = FlowKey::new(0x0a00_0000 + i, 1024 + i as u16, 0xc0a8_0001, 8443);
            spray_groups.insert(spray.group_for(&flow));
            pin_groups.insert(pin.group_for(&flow));
        }
        assert_eq!(pin_groups.len(), 1, "DipDport must pin tenant to a group");
        assert!(
            spray_groups.len() > 1,
            "FlowHash must spread a tenant across groups"
        );
    }

    #[test]
    fn dispatch_honours_group_bitmaps() {
        let gs = GroupScheduler::new(8, 4, GroupBy::FlowHash, cfg());
        // Bring all workers up, overload worker local=0 of each group.
        for g in 0..2 {
            for w in 0..4 {
                gs.group(g).wst().worker(w).enter_loop(1_000);
            }
            gs.group(g).wst().worker(0).conn_delta(1_000);
        }
        gs.schedule_all(1_010);
        for i in 0..300u32 {
            let flow = FlowKey::new(i, i as u16, 7, 443);
            let (g, out) = gs.dispatch(&flow);
            assert!(out.is_directed());
            assert_ne!(out.worker(), 0, "overloaded worker selected in group {g}");
        }
    }

    #[test]
    fn degenerate_configs_match_paper_claims() {
        // One group ⇒ standard Hermes (single WST covering everyone).
        let hermes = GroupScheduler::new(32, 32, GroupBy::DipDport, cfg());
        assert_eq!(hermes.group_count(), 1);
        // One worker per group ⇒ reduces to reuseport: every group has a
        // single candidate, the n>1 guard always fails, selection is pure
        // level-1 hashing.
        let reuseport = GroupScheduler::new(8, 1, GroupBy::FlowHash, cfg());
        for g in 0..8 {
            reuseport.group(g).wst().worker(0).enter_loop(1_000);
        }
        reuseport.schedule_all(1_010);
        let flow = FlowKey::new(1, 2, 3, 4);
        let (_, out) = reuseport.dispatch(&flow);
        assert!(!out.is_directed(), "single-worker groups must fall back");
    }

    #[test]
    fn global_selected_lifts_local_ids() {
        let gs = GroupScheduler::new(6, 3, GroupBy::FlowHash, cfg());
        for g in 0..2 {
            for w in 0..3 {
                gs.group(g).wst().worker(w).enter_loop(1_000);
            }
        }
        gs.schedule_all(1_010);
        let mut sel = gs.global_selected();
        sel.sort_unstable();
        assert_eq!(sel, vec![0, 1, 2, 3, 4, 5]);
    }
}
