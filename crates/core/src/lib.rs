//! # hermes-core
//!
//! The primary contribution of the Hermes paper (SIGCOMM 2025): a
//! *userspace-directed I/O event notification* framework for L7 load
//! balancers, as a reusable library.
//!
//! Hermes closes a feedback loop between userspace workers and the kernel's
//! connection dispatch:
//!
//! 1. **Worker status update** — every worker publishes three metrics into a
//!    lock-free, per-worker-partitioned [`Wst`] (Worker Status Table): the
//!    timestamp of its last event-loop entry, its pending-event count, and
//!    its accumulated connection count (§5.2.1).
//! 2. **Connection scheduling** — a scheduler embedded in each worker's
//!    event loop runs the cascading filter of Algorithm 1
//!    ([`Scheduler::schedule`]): drop hung workers by loop-entry timestamp,
//!    then keep workers whose connection count and pending-event count are
//!    below `average + θ`. The surviving set is encoded as a 64-bit
//!    [`WorkerBitmap`] and stored into a [`SelMap`] — the stand-in for the
//!    `BPF_MAP_TYPE_ARRAY` element the kernel reads (§5.3).
//! 3. **Connection dispatch** — for each new connection the kernel-side
//!    program of Algorithm 2 ([`dispatch::ConnDispatcher`]) counts the set
//!    bits, scales the precomputed 4-tuple hash into `1..=n` with
//!    `reciprocal_scale`, picks the Nth set bit, and selects that worker's
//!    reuseport socket; with too few candidates it falls back to plain
//!    reuseport hashing (§5.3.2, §5.4).
//!
//! Scaling beyond 64 workers uses the two-level group selection of §7
//! ([`group::GroupScheduler`]); the same machinery doubles as the
//! cache-locality trade-off knob of Appendix C (one group ⇒ pure Hermes, one
//! worker per group ⇒ pure reuseport).
//!
//! The crate is deliberately runtime-agnostic: the discrete-event simulator
//! (`hermes-simnet`), the real threaded runtime (`hermes-runtime`), and the
//! eBPF-bytecode dispatch program (`hermes-ebpf`) all consume these types.
//!
//! ## Quick example
//!
//! ```
//! use hermes_core::{Wst, Scheduler, SchedConfig, dispatch::ConnDispatcher, SelMap};
//! use std::sync::Arc;
//!
//! let workers = 4;
//! let wst = Arc::new(Wst::new(workers));
//! let sel = Arc::new(SelMap::new());
//!
//! // Workers publish status from their event loops (Fig. 9 hooks):
//! wst.worker(0).enter_loop(1_000);     // shm_avail_update(now)
//! wst.worker(0).add_pending(3);        // shm_busy_count(event_num)
//! wst.worker(0).conn_delta(1);         // shm_conn_count(+1)
//! for w in 1..workers {
//!     wst.worker(w).enter_loop(1_000);
//! }
//!
//! // Any worker runs schedule_and_sync at the end of its loop:
//! let sched = Scheduler::new(SchedConfig::default());
//! let decision = sched.schedule(&wst, 2_000);
//! sel.store(decision.bitmap);
//!
//! // Kernel-side dispatch for a new connection with some 4-tuple hash:
//! let dispatcher = ConnDispatcher::new(workers);
//! let worker = dispatcher.select(sel.load(), 0xdead_beef);
//! assert!(worker.is_some());
//! ```

pub mod backend;
pub mod bitmap;
pub mod canary;
pub mod costmodel;
pub mod degrade;
pub mod dispatch;
pub mod group;
pub mod hash;
pub mod sandbox;
pub mod sched;
pub mod sdk;
pub mod selmap;
pub mod status;
pub(crate) mod sync;
pub mod wst;

pub use bitmap::{WorkerBitmap, MAX_WORKERS_PER_GROUP};
pub use dispatch::ConnDispatcher;
pub use group::{GroupedConnDispatcher, GroupedDispatch, MAX_DISPATCH_GROUPS};
pub use hash::FlowKey;
pub use sched::{FilterStage, SchedConfig, SchedDecision, Scheduler};
pub use sdk::{SyncTarget, WorkerSession};
pub use selmap::{SelMap, SockArray};
pub use status::{WorkerSnapshot, WorkerStatus};
pub use wst::{SnapshotCache, Wst};

/// Identifies a worker within one LB device (dense, 0-based).
pub type WorkerId = usize;

/// Shared batch geometry for the dispatch path: the lb server drains up to
/// this many accepts per burst, the threaded runtime sizes `submit_batch`
/// event capacity with it, and flight-recorder batch events report lengths
/// against it. One constant so the layers cannot drift apart.
pub const DISPATCH_BATCH: usize = 64;
