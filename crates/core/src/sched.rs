//! The userspace scheduler: Algorithm 1's cascading worker filtering.
//!
//! §5.2.2: three filters run in a deliberately chosen order —
//!
//! 1. **FilterTime** drops hung/crashed workers (loop-entry timestamp older
//!    than a threshold), because connections must never be assigned to them;
//! 2. **FilterCount(conn)** keeps workers with `connections < avg + θ`,
//!    defending against synchronized surges over accumulated long-lived
//!    connections;
//! 3. **FilterCount(event)** keeps workers with `pending < avg + θ`,
//!    reducing request processing latency.
//!
//! θ (the *offset*) widens each baseline so the coarse filter does not
//! select too few workers (Fig. 15 finds θ/Avg ≈ 0.5 optimal). The scheduler
//! is O(n) — a single pass per filter over at most 64 workers — so it is
//! cheap enough to run at the end of every epoll event loop iteration
//! (§5.3.2).

use crate::bitmap::WorkerBitmap;
use crate::status::WorkerSnapshot;
use crate::wst::{SnapshotCache, Wst};

/// One stage of the cascade; reorderable for the filter-order ablation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FilterStage {
    /// Drop workers whose loop-entry timestamp is stale (hung detection).
    Time,
    /// Keep workers whose connection count is below `avg + θ`.
    Connections,
    /// Keep workers whose pending-event count is below `avg + θ`.
    PendingEvents,
}

/// Scheduler tuning knobs.
#[derive(Clone, Debug, PartialEq)]
pub struct SchedConfig {
    /// Hang threshold for FilterTime (paper: "an extended period"; the
    /// event loop re-enters at least every 5 ms thanks to the `epoll_wait`
    /// timeout, so a multiple of that timeout is the natural unit).
    pub hang_threshold_ns: u64,
    /// θ expressed as a fraction of the running average (`θ = theta_frac *
    /// avg`), matching the θ/Avg axis of Fig. 15. Default 0.5 — the paper's
    /// optimum.
    pub theta_frac: f64,
    /// Filter cascade order; default is the paper's Time → Connections →
    /// PendingEvents (§5.2.2 "worker filtering order").
    pub stages: Vec<FilterStage>,
    /// Minimum candidates the coarse filter should report for the kernel to
    /// honour the bitmap; with `count <= min_workers` the kernel falls back
    /// to plain reuseport (Algorithm 2 checks `n > 1`).
    pub min_workers: u32,
}

impl Default for SchedConfig {
    fn default() -> Self {
        Self {
            hang_threshold_ns: 100 * 1_000_000, // 100 ms ≈ 20 missed loop deadlines
            theta_frac: 0.5,
            stages: vec![
                FilterStage::Time,
                FilterStage::Connections,
                FilterStage::PendingEvents,
            ],
            min_workers: 1,
        }
    }
}

/// Outcome of one `schedule_and_sync` invocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchedDecision {
    /// Workers that passed the coarse-grained filter, as the bitmap that
    /// will be synchronized into the kernel map.
    pub bitmap: WorkerBitmap,
    /// Workers that passed FilterTime (i.e. are not hung) regardless of the
    /// load filters — used by availability monitoring and degradation.
    pub alive: WorkerBitmap,
}

/// The userspace scheduler (Algorithm 1).
///
/// ```
/// use hermes_core::{Scheduler, SchedConfig, Wst};
/// let wst = Wst::new(3);
/// for w in 0..3 { wst.worker(w).enter_loop(1_000_000); }
/// wst.worker(1).conn_delta(500); // overloaded
/// let d = Scheduler::new(SchedConfig::default()).schedule(&wst, 1_500_000);
/// assert!(!d.bitmap.contains(1));
/// assert!(d.alive.contains(1)); // overloaded but not hung
/// ```
#[derive(Clone, Debug)]
pub struct Scheduler {
    config: SchedConfig,
}

impl Scheduler {
    /// Create a scheduler with the given configuration.
    pub fn new(config: SchedConfig) -> Self {
        assert!(
            config.theta_frac >= 0.0 && config.theta_frac.is_finite(),
            "theta_frac must be a finite non-negative fraction"
        );
        assert!(!config.stages.is_empty(), "at least one filter stage");
        Self { config }
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &SchedConfig {
        &self.config
    }

    /// Run the cascade over a snapshot taken at `now_ns`.
    ///
    /// This is `schedule_and_sync` minus the sync: the caller stores
    /// `decision.bitmap` into a [`crate::SelMap`] (and, in the eBPF-backed
    /// deployments, into the `BPF_MAP_TYPE_ARRAY` slot). Allocates a
    /// snapshot buffer per call — loop-resident callers should hold a
    /// [`SnapshotCache`] and use [`Scheduler::schedule_into`] instead.
    pub fn schedule(&self, wst: &Wst, now_ns: u64) -> SchedDecision {
        let mut buf = Vec::with_capacity(wst.workers());
        wst.snapshot_into(&mut buf);
        self.schedule_from_snapshot(&buf, now_ns)
    }

    /// Allocation-free `schedule`: snapshots through the caller-held
    /// epoch-tagged cache, so an unchanged WST costs one epoch read and
    /// zero metric loads. This is the per-loop-iteration entry point
    /// (§5.3.2 runs the scheduler at the end of *every* event loop pass).
    pub fn schedule_into(
        &self,
        wst: &Wst,
        now_ns: u64,
        cache: &mut SnapshotCache,
    ) -> SchedDecision {
        let snapshot = wst.snapshot_cached(cache);
        self.schedule_from_snapshot(snapshot, now_ns)
    }

    /// Run the cascade over an already-taken snapshot (for tests, the
    /// simulator, and re-entrant use).
    pub fn schedule_from_snapshot(
        &self,
        snapshot: &[WorkerSnapshot],
        now_ns: u64,
    ) -> SchedDecision {
        debug_assert!(snapshot.len() <= 64);
        let mut selected = WorkerBitmap::all(snapshot.len());
        let mut alive = selected;
        for (stage_idx, stage) in self.config.stages.iter().enumerate() {
            let before = selected.count();
            let stage_code = match stage {
                FilterStage::Time => {
                    selected = self.filter_time(snapshot, selected, now_ns);
                    alive = selected;
                    0u64
                }
                FilterStage::Connections => {
                    selected = self.filter_count(snapshot, selected, |s| s.connections as f64);
                    1
                }
                FilterStage::PendingEvents => {
                    selected = self.filter_count(snapshot, selected, |s| s.pending_events as f64);
                    2
                }
            };
            hermes_trace::trace_event!(
                now_ns,
                hermes_trace::EventKind::SchedStage,
                hermes_trace::CONTROL_LANE,
                ((stage_idx as u64) << 32) | stage_code,
                selected.0
            );
            hermes_trace::trace_count!(
                hermes_trace::CounterId::SchedStageRejects,
                u64::from(before - selected.count())
            );
        }
        // If Time never ran (ablation orders), alive === the last state
        // after construction; recompute it for consistency.
        if !self.config.stages.contains(&FilterStage::Time) {
            alive = self.filter_time(snapshot, WorkerBitmap::all(snapshot.len()), now_ns);
        }
        hermes_trace::trace_event!(
            now_ns,
            hermes_trace::EventKind::SchedDecision,
            hermes_trace::CONTROL_LANE,
            selected.0,
            alive.0
        );
        hermes_trace::trace_count!(hermes_trace::CounterId::SchedPasses);
        SchedDecision {
            bitmap: selected,
            alive,
        }
    }

    /// FilterTime (Algorithm 1 lines 9–10): keep workers whose loop-entry
    /// timestamp is fresher than the hang threshold.
    fn filter_time(
        &self,
        snapshot: &[WorkerSnapshot],
        input: WorkerBitmap,
        now_ns: u64,
    ) -> WorkerBitmap {
        let mut out = WorkerBitmap::EMPTY;
        for id in input.iter() {
            if !snapshot[id].is_hung(now_ns, self.config.hang_threshold_ns) {
                out.insert(id);
            }
        }
        out
    }

    /// FilterCount (Algorithm 1 lines 11–13): keep workers whose metric is
    /// below the average over the *surviving* set plus θ.
    fn filter_count<F: Fn(&WorkerSnapshot) -> f64>(
        &self,
        snapshot: &[WorkerSnapshot],
        input: WorkerBitmap,
        metric: F,
    ) -> WorkerBitmap {
        let n = input.count();
        if n == 0 {
            return input;
        }
        let sum: f64 = input.iter().map(|id| metric(&snapshot[id])).sum();
        let avg = sum / n as f64;
        let theta = self.config.theta_frac * avg;
        let mut out = WorkerBitmap::EMPTY;
        for id in input.iter() {
            // Strict `<` per Algorithm 1 line 13 (`R_i < Avg + θ`), except
            // when every survivor has the identical value (avg + θ == value,
            // θ possibly 0): then the filter would empty the set for no
            // informational gain, so an all-equal set passes through.
            if metric(&snapshot[id]) < avg + theta {
                out.insert(id);
            }
        }
        if out.is_empty() {
            // All survivors share the metric value; keep them all.
            input
        } else {
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(loop_enter_ns: u64, pending: i64, conns: i64) -> WorkerSnapshot {
        WorkerSnapshot {
            loop_enter_ns,
            pending_events: pending,
            connections: conns,
        }
    }

    fn sched() -> Scheduler {
        Scheduler::new(SchedConfig {
            hang_threshold_ns: 100,
            theta_frac: 0.5,
            ..SchedConfig::default()
        })
    }

    #[test]
    fn all_fresh_idle_workers_selected() {
        let s = sched();
        let snaps = vec![snap(1_000, 0, 0); 4];
        let d = s.schedule_from_snapshot(&snaps, 1_050);
        assert_eq!(d.bitmap, WorkerBitmap::all(4));
        assert_eq!(d.alive, WorkerBitmap::all(4));
    }

    #[test]
    fn hung_worker_filtered_first() {
        let s = sched();
        let snaps = vec![
            snap(1_000, 0, 0),
            snap(500, 0, 0), // stale by 550 >= threshold 100 ⇒ hung
            snap(1_000, 0, 0),
        ];
        let d = s.schedule_from_snapshot(&snaps, 1_050);
        assert!(!d.bitmap.contains(1));
        assert!(!d.alive.contains(1));
        assert!(d.bitmap.contains(0) && d.bitmap.contains(2));
    }

    #[test]
    fn never_started_worker_filtered_after_threshold() {
        let s = sched();
        // Worker 0 reads as entered-at-0; at now=1010 with threshold 100
        // it is stale and filtered.
        let snaps = vec![snap(0, 0, 0), snap(1_000, 0, 0)];
        let d = s.schedule_from_snapshot(&snaps, 1_010);
        assert_eq!(d.bitmap.iter().collect::<Vec<_>>(), vec![1]);
        // Early on (now < threshold) it still counts as available.
        let d = s.schedule_from_snapshot(&snaps, 50);
        assert!(d.bitmap.contains(0));
    }

    #[test]
    fn connection_filter_prefers_lightly_loaded() {
        let s = sched();
        // avg conns = (0+0+12)/3 = 4, θ = 2 ⇒ keep conns < 6.
        let snaps = vec![snap(1_000, 0, 0), snap(1_000, 0, 0), snap(1_000, 0, 12)];
        let d = s.schedule_from_snapshot(&snaps, 1_010);
        assert_eq!(d.bitmap.iter().collect::<Vec<_>>(), vec![0, 1]);
        // But the overloaded worker is still alive.
        assert!(d.alive.contains(2));
    }

    #[test]
    fn event_filter_runs_after_connection_filter() {
        let s = sched();
        // Worker 2 has huge conns (dropped in stage 2). Among {0,1}, worker 1
        // has pending=10 vs avg (0+10)/2=5, θ=2.5 ⇒ keep pending < 7.5 ⇒ {0}.
        let snaps = vec![snap(1_000, 0, 1), snap(1_000, 10, 1), snap(1_000, 0, 50)];
        let d = s.schedule_from_snapshot(&snaps, 1_010);
        assert_eq!(d.bitmap.iter().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn uniform_load_keeps_everyone() {
        // All equal metrics: strict `<` would empty the set; the all-equal
        // escape keeps it intact.
        let s = Scheduler::new(SchedConfig {
            hang_threshold_ns: 100,
            theta_frac: 0.0,
            ..SchedConfig::default()
        });
        let snaps = vec![snap(1_000, 5, 7); 8];
        let d = s.schedule_from_snapshot(&snaps, 1_010);
        assert_eq!(d.bitmap, WorkerBitmap::all(8));
    }

    #[test]
    fn larger_theta_is_more_permissive() {
        let snaps = vec![snap(1_000, 0, 2), snap(1_000, 0, 4), snap(1_000, 0, 6)];
        // avg = 4. θ_frac 0 ⇒ keep < 4 ⇒ {0}. θ_frac 0.75 ⇒ keep < 7 ⇒ all.
        let tight = Scheduler::new(SchedConfig {
            hang_threshold_ns: 100,
            theta_frac: 0.0,
            ..SchedConfig::default()
        });
        let loose = Scheduler::new(SchedConfig {
            hang_threshold_ns: 100,
            theta_frac: 0.75,
            ..SchedConfig::default()
        });
        assert_eq!(
            tight
                .schedule_from_snapshot(&snaps, 1_010)
                .bitmap
                .iter()
                .collect::<Vec<_>>(),
            vec![0]
        );
        assert_eq!(
            loose.schedule_from_snapshot(&snaps, 1_010).bitmap,
            WorkerBitmap::all(3)
        );
    }

    #[test]
    fn ablation_order_changes_result() {
        // With Time last, load filters see the hung worker's inflated
        // metrics and the averages shift.
        let snaps = vec![snap(1_000, 0, 0), snap(1_000, 0, 4), snap(200, 0, 100)];
        let paper_order = sched();
        let reversed = Scheduler::new(SchedConfig {
            hang_threshold_ns: 100,
            theta_frac: 0.5,
            stages: vec![
                FilterStage::Connections,
                FilterStage::PendingEvents,
                FilterStage::Time,
            ],
            ..SchedConfig::default()
        });
        let a = paper_order.schedule_from_snapshot(&snaps, 1_010);
        let b = reversed.schedule_from_snapshot(&snaps, 1_010);
        // Paper order: hung dropped first, avg conns over {0,1} = 2, θ=1 ⇒
        // keep < 3 ⇒ {0}. Reversed: avg over all = 34.67, θ=17.3 ⇒ {0,1}
        // survive the load filter, then hung dropped ⇒ {0,1}.
        assert_eq!(a.bitmap.iter().collect::<Vec<_>>(), vec![0]);
        assert_eq!(b.bitmap.iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn schedule_reads_live_wst() {
        let wst = Wst::new(3);
        for w in 0..3 {
            wst.worker(w).enter_loop(1_000);
        }
        wst.worker(1).conn_delta(100);
        let d = sched().schedule(&wst, 1_020);
        assert!(!d.bitmap.contains(1));
        assert!(d.bitmap.contains(0) && d.bitmap.contains(2));
    }

    #[test]
    fn schedule_into_matches_schedule_and_caches() {
        let wst = Wst::new(4);
        for w in 0..4 {
            wst.worker(w).enter_loop(1_000);
        }
        wst.worker(3).conn_delta(200);
        let s = sched();
        let mut cache = SnapshotCache::new();
        let a = s.schedule(&wst, 1_050);
        let b = s.schedule_into(&wst, 1_050, &mut cache);
        assert_eq!(a, b);
        // Unchanged table: the second pass is a cache hit with the same
        // decision.
        let c = s.schedule_into(&wst, 1_050, &mut cache);
        assert_eq!(b, c);
        assert_eq!(cache.hits, 1);
        // New writes flow through.
        wst.worker(0).conn_delta(500);
        let d = s.schedule_into(&wst, 1_060, &mut cache);
        assert!(!d.bitmap.contains(0));
    }

    #[test]
    fn alive_computed_even_without_time_stage() {
        let s = Scheduler::new(SchedConfig {
            hang_threshold_ns: 100,
            theta_frac: 0.5,
            stages: vec![FilterStage::Connections],
            ..SchedConfig::default()
        });
        let snaps = vec![snap(1_000, 0, 0), snap(1, 0, 0)];
        let d = s.schedule_from_snapshot(&snaps, 2_000);
        // Stage list has no Time filter, so the hung worker can pass the
        // bitmap, but `alive` still reflects hang detection.
        assert!(d.bitmap.contains(1));
        assert!(!d.alive.contains(1));
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn rejects_negative_theta() {
        Scheduler::new(SchedConfig {
            theta_frac: -0.1,
            ..SchedConfig::default()
        });
    }

    #[test]
    fn all_hung_yields_empty_bitmap() {
        // §5.3.2: if all workers hang the kernel falls back to reuseport and
        // the alert system takes over; the scheduler just reports honestly.
        let s = sched();
        let snaps = vec![snap(1, 0, 0); 4];
        let d = s.schedule_from_snapshot(&snaps, 1_000_000);
        assert!(d.bitmap.is_empty());
        assert!(d.alive.is_empty());
    }
}
