//! The Worker Status Table (WST).
//!
//! §4.1 stage 1: an inter-process table in shared memory, one column per
//! worker, one row per metric. In this reproduction the table lives in an
//! ordinary allocation shared by `Arc` across threads — the lock-free
//! discipline (per-worker write partitioning, per-field atomic reads) is
//! identical to the multi-process shared-memory original; only the mapping
//! mechanism differs (see DESIGN.md substitutions).

use crate::status::{WorkerSnapshot, WorkerStatus};
use crate::WorkerId;

/// Worker Status Table: a fixed-size array of per-worker status slots.
///
/// The owner of slot `i` is worker `i`; only that worker writes the slot.
/// Any thread may read any slot at any time without coordination.
#[derive(Debug)]
pub struct Wst {
    slots: Box<[WorkerStatus]>,
}

impl Wst {
    /// Create a table for `workers` workers (1..=64 for the single-level
    /// scheduler; larger deployments compose tables via
    /// [`crate::group::GroupScheduler`]).
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "WST needs at least one worker");
        assert!(
            workers <= crate::MAX_WORKERS_PER_GROUP,
            "single-level WST supports at most {} workers; use GroupScheduler",
            crate::MAX_WORKERS_PER_GROUP
        );
        let slots: Vec<WorkerStatus> = (0..workers).map(|_| WorkerStatus::new()).collect();
        Self {
            slots: slots.into_boxed_slice(),
        }
    }

    /// Number of workers in the table.
    pub fn workers(&self) -> usize {
        self.slots.len()
    }

    /// Access worker `id`'s slot.
    ///
    /// # Panics
    /// Panics when `id` is out of range — an out-of-range worker id is a
    /// wiring bug, never a runtime condition.
    #[inline]
    pub fn worker(&self, id: WorkerId) -> &WorkerStatus {
        &self.slots[id]
    }

    /// Snapshot every worker's metrics. Reads are lock-free; cross-worker
    /// and cross-field skew is possible and acceptable (§5.3.1).
    pub fn snapshot(&self) -> Vec<WorkerSnapshot> {
        self.slots.iter().map(WorkerStatus::snapshot).collect()
    }

    /// Snapshot into a caller-provided buffer, avoiding allocation on the
    /// scheduling fast path. The buffer is cleared first.
    pub fn snapshot_into(&self, out: &mut Vec<WorkerSnapshot>) {
        out.clear();
        out.extend(self.slots.iter().map(WorkerStatus::snapshot));
    }

    /// Reset every slot (full LB restart).
    pub fn reset(&self) {
        for s in self.slots.iter() {
            s.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn construction_bounds() {
        assert_eq!(Wst::new(1).workers(), 1);
        assert_eq!(Wst::new(64).workers(), 64);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn rejects_more_than_64_workers() {
        Wst::new(65);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_zero_workers() {
        Wst::new(0);
    }

    #[test]
    fn per_worker_partitioning() {
        let wst = Wst::new(3);
        wst.worker(0).conn_delta(5);
        wst.worker(2).add_pending(7);
        let snap = wst.snapshot();
        assert_eq!(snap[0].connections, 5);
        assert_eq!(snap[1].connections, 0);
        assert_eq!(snap[2].pending_events, 7);
    }

    #[test]
    fn snapshot_into_reuses_buffer() {
        let wst = Wst::new(4);
        let mut buf = Vec::new();
        wst.snapshot_into(&mut buf);
        assert_eq!(buf.len(), 4);
        wst.worker(1).conn_delta(1);
        wst.snapshot_into(&mut buf);
        assert_eq!(buf.len(), 4);
        assert_eq!(buf[1].connections, 1);
    }

    #[test]
    fn reset_clears_all_slots() {
        let wst = Wst::new(2);
        wst.worker(0).enter_loop(9);
        wst.worker(1).conn_delta(3);
        wst.reset();
        assert!(wst
            .snapshot()
            .iter()
            .all(|s| s.loop_enter_ns == 0 && s.pending_events == 0 && s.connections == 0));
    }

    #[test]
    fn concurrent_owners_do_not_interfere() {
        // Each worker thread hammers only its own slot; a scheduler thread
        // reads the whole table. Final per-slot values must equal each
        // owner's arithmetic, proving write partitioning.
        let wst = Arc::new(Wst::new(8));
        let mut handles = Vec::new();
        for w in 0..8 {
            let t = Arc::clone(&wst);
            handles.push(std::thread::spawn(move || {
                for i in 0..5_000i64 {
                    t.worker(w).conn_delta(1);
                    t.worker(w).add_pending(1);
                    if i % 2 == 0 {
                        t.worker(w).event_done();
                    }
                    t.worker(w).enter_loop((w as u64 + 1) * 1_000 + i as u64);
                }
            }));
        }
        let reader = {
            let t = Arc::clone(&wst);
            std::thread::spawn(move || {
                for _ in 0..2_000 {
                    let snap = t.snapshot();
                    assert_eq!(snap.len(), 8);
                }
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        reader.join().unwrap();
        for w in 0..8 {
            let s = wst.worker(w).snapshot();
            assert_eq!(s.connections, 5_000);
            assert_eq!(s.pending_events, 2_500);
            assert_eq!(s.loop_enter_ns, (w as u64 + 1) * 1_000 + 4_999);
        }
    }
}
