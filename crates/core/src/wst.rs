//! The Worker Status Table (WST).
//!
//! §4.1 stage 1: an inter-process table in shared memory, one column per
//! worker, one row per metric. In this reproduction the table lives in an
//! ordinary allocation shared by `Arc` across threads — the lock-free
//! discipline (per-worker write partitioning, per-field atomic reads) is
//! identical to the multi-process shared-memory original; only the mapping
//! mechanism differs (see DESIGN.md substitutions).

use crate::status::{WorkerSnapshot, WorkerStatus};
use crate::WorkerId;

/// Worker Status Table: a fixed-size array of per-worker status slots.
///
/// The owner of slot `i` is worker `i`; only that worker writes the slot.
/// Any thread may read any slot at any time without coordination.
#[derive(Debug)]
pub struct Wst {
    slots: Box<[WorkerStatus]>,
}

impl Wst {
    /// Create a table for `workers` workers (1..=64 for the single-level
    /// scheduler; larger deployments compose tables via
    /// [`crate::group::GroupScheduler`]).
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "WST needs at least one worker");
        assert!(
            workers <= crate::MAX_WORKERS_PER_GROUP,
            "single-level WST supports at most {} workers; use GroupScheduler",
            crate::MAX_WORKERS_PER_GROUP
        );
        let slots: Vec<WorkerStatus> = (0..workers).map(|_| WorkerStatus::new()).collect();
        Self {
            slots: slots.into_boxed_slice(),
        }
    }

    /// Number of workers in the table.
    pub fn workers(&self) -> usize {
        self.slots.len()
    }

    /// Access worker `id`'s slot.
    ///
    /// # Panics
    /// Panics when `id` is out of range — an out-of-range worker id is a
    /// wiring bug, never a runtime condition.
    #[inline]
    pub fn worker(&self, id: WorkerId) -> &WorkerStatus {
        &self.slots[id]
    }

    /// Snapshot into a caller-provided buffer, avoiding allocation on the
    /// scheduling fast path. The buffer is cleared first. Reads are
    /// lock-free; cross-worker and cross-field skew is possible and
    /// acceptable (§5.3.1).
    pub fn snapshot_into(&self, out: &mut Vec<WorkerSnapshot>) {
        out.clear();
        out.extend(self.slots.iter().map(WorkerStatus::snapshot));
    }

    /// A cheap fingerprint of the table's write history: the wrapping sum
    /// of every slot's write counter. Unchanged epoch ⇒ no slot was
    /// mutated since (collisions would need exactly 2⁶⁴ interleaved
    /// writes between reads). Used by [`Wst::snapshot_cached`] to skip
    /// re-reading an unchanged table.
    pub fn epoch(&self) -> u64 {
        self.slots
            .iter()
            .fold(0u64, |acc, s| acc.wrapping_add(s.version()))
    }

    /// Snapshot through an epoch-tagged cache: when no worker has written
    /// since the cache was filled, the previous snapshot is returned
    /// without touching the per-worker metric atomics. Staleness races
    /// (a write landing between the epoch read and the copy) leave the
    /// cache one write behind — exactly the skew §5.3.1 already accepts.
    pub fn snapshot_cached<'c>(&self, cache: &'c mut SnapshotCache) -> &'c [WorkerSnapshot] {
        let epoch = self.epoch();
        if !cache.primed || cache.epoch != epoch || cache.buf.len() != self.workers() {
            self.snapshot_into(&mut cache.buf);
            cache.epoch = epoch;
            cache.primed = true;
            cache.misses += 1;
            hermes_trace::trace_count!(hermes_trace::CounterId::WstSnapshotMisses);
        } else {
            cache.hits += 1;
            hermes_trace::trace_count!(hermes_trace::CounterId::WstSnapshotHits);
        }
        &cache.buf
    }

    /// Reset every slot (full LB restart).
    pub fn reset(&self) {
        for s in self.slots.iter() {
            s.reset();
        }
    }
}

/// Caller-held state for [`Wst::snapshot_cached`]: the reusable snapshot
/// buffer plus the epoch it was taken at.
#[derive(Debug, Default)]
pub struct SnapshotCache {
    buf: Vec<WorkerSnapshot>,
    epoch: u64,
    primed: bool,
    /// Lookups answered from the cached buffer.
    pub hits: u64,
    /// Lookups that had to re-read the table.
    pub misses: u64,
}

impl SnapshotCache {
    /// An empty (unprimed) cache.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn construction_bounds() {
        assert_eq!(Wst::new(1).workers(), 1);
        assert_eq!(Wst::new(64).workers(), 64);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn rejects_more_than_64_workers() {
        Wst::new(65);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_zero_workers() {
        Wst::new(0);
    }

    #[test]
    fn per_worker_partitioning() {
        let wst = Wst::new(3);
        wst.worker(0).conn_delta(5);
        wst.worker(2).add_pending(7);
        let mut snap = Vec::new();
        wst.snapshot_into(&mut snap);
        assert_eq!(snap[0].connections, 5);
        assert_eq!(snap[1].connections, 0);
        assert_eq!(snap[2].pending_events, 7);
    }

    #[test]
    fn snapshot_into_reuses_buffer() {
        let wst = Wst::new(4);
        let mut buf = Vec::new();
        wst.snapshot_into(&mut buf);
        assert_eq!(buf.len(), 4);
        wst.worker(1).conn_delta(1);
        wst.snapshot_into(&mut buf);
        assert_eq!(buf.len(), 4);
        assert_eq!(buf[1].connections, 1);
    }

    #[test]
    fn epoch_moves_only_on_writes() {
        let wst = Wst::new(3);
        let e0 = wst.epoch();
        wst.snapshot_into(&mut Vec::new());
        assert_eq!(wst.epoch(), e0, "reads must not move the epoch");
        wst.worker(1).conn_delta(1);
        assert_ne!(wst.epoch(), e0);
    }

    #[test]
    fn snapshot_cached_skips_unchanged_tables() {
        let wst = Wst::new(4);
        let mut cache = SnapshotCache::new();
        assert_eq!(wst.snapshot_cached(&mut cache).len(), 4);
        assert_eq!((cache.hits, cache.misses), (0, 1));
        // No writes since: served from cache.
        let _ = wst.snapshot_cached(&mut cache);
        let _ = wst.snapshot_cached(&mut cache);
        assert_eq!((cache.hits, cache.misses), (2, 1));
        // A write invalidates; the refilled buffer sees it.
        wst.worker(2).add_pending(5);
        let snap = wst.snapshot_cached(&mut cache);
        assert_eq!(snap[2].pending_events, 5);
        assert_eq!((cache.hits, cache.misses), (2, 2));
    }

    #[test]
    fn snapshot_cached_rejects_foreign_cache_size() {
        // A cache primed on one table must refill on a differently-sized
        // table rather than serve the wrong shape.
        let a = Wst::new(2);
        let b = Wst::new(5);
        let mut cache = SnapshotCache::new();
        assert_eq!(a.snapshot_cached(&mut cache).len(), 2);
        assert_eq!(b.snapshot_cached(&mut cache).len(), 5);
    }

    #[test]
    fn reset_clears_all_slots() {
        let wst = Wst::new(2);
        wst.worker(0).enter_loop(9);
        wst.worker(1).conn_delta(3);
        wst.reset();
        let mut snap = Vec::new();
        wst.snapshot_into(&mut snap);
        assert!(snap
            .iter()
            .all(|s| s.loop_enter_ns == 0 && s.pending_events == 0 && s.connections == 0));
    }

    #[test]
    fn concurrent_owners_do_not_interfere() {
        // Each worker thread hammers only its own slot; a scheduler thread
        // reads the whole table. Final per-slot values must equal each
        // owner's arithmetic, proving write partitioning.
        let wst = Arc::new(Wst::new(8));
        let mut handles = Vec::new();
        for w in 0..8 {
            let t = Arc::clone(&wst);
            handles.push(std::thread::spawn(move || {
                for i in 0..5_000i64 {
                    t.worker(w).conn_delta(1);
                    t.worker(w).add_pending(1);
                    if i % 2 == 0 {
                        t.worker(w).event_done();
                    }
                    t.worker(w).enter_loop((w as u64 + 1) * 1_000 + i as u64);
                }
            }));
        }
        let reader = {
            let t = Arc::clone(&wst);
            std::thread::spawn(move || {
                let mut snap = Vec::new();
                for _ in 0..2_000 {
                    t.snapshot_into(&mut snap);
                    assert_eq!(snap.len(), 8);
                }
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        reader.join().unwrap();
        for w in 0..8 {
            let s = wst.worker(w).snapshot();
            assert_eq!(s.connections, 5_000);
            assert_eq!(s.pending_events, 2_500);
            assert_eq!(s.loop_enter_ns, (w as u64 + 1) * 1_000 + 4_999);
        }
    }
}
