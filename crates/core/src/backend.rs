//! Backend-side models — re-exported from `hermes-backend`.
//!
//! The §7 deployment-experience models ([`RoundRobin`], [`PoolSim`]) and
//! the real backend data plane (versioned pools, O(1) consistent
//! selection) now live in the `hermes-backend` crate; this module
//! re-exports the lot so existing `hermes_core::backend::*` callers keep
//! compiling while new code depends on `hermes-backend` directly.

pub use hermes_backend::{
    fleet_distribution, Admission, BackendId, BackendPool, BackendTable, HealthCells, HealthState,
    PoolModel, PoolSim, Resolution, RestartPolicy, RoundRobin, TableCache,
};
