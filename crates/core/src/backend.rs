//! Backend-side models for the §7 deployment experiences.
//!
//! Replacing epoll exclusive with Hermes surfaced two *backend* effects:
//!
//! 1. **Synchronized round-robin restarts.** When a tenant's server list
//!    updates, every worker restarts its round-robin cursor at the first
//!    server. Under exclusive one worker carried most requests, so its
//!    round-robin wrapped many times and stayed fair; under Hermes each
//!    worker carries few requests, and the synchronized restarts pile
//!    traffic onto the first few servers. Fix: randomize each worker's
//!    starting offset after list updates ([`RestartPolicy::Randomized`]).
//! 2. **Reduced backend connection reuse.** Spreading requests across all
//!    workers fragments per-worker backend connection pools; a shared
//!    pool restores the reuse rate ([`PoolModel`]).

use crate::WorkerId;

/// How a worker's round-robin cursor restarts after a server-list update.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RestartPolicy {
    /// Restart at the first server (the pre-fix behaviour).
    FirstServer,
    /// Restart at a per-worker pseudo-random offset (the deployed fix).
    Randomized {
        /// Seed mixed with the worker id to derive the offset.
        seed: u64,
    },
}

/// One worker's round-robin distributor over a tenant's backend servers.
#[derive(Clone, Debug)]
pub struct RoundRobin {
    servers: usize,
    cursor: usize,
}

impl RoundRobin {
    /// A distributor over `servers` backends, cursor at 0.
    pub fn new(servers: usize) -> Self {
        assert!(servers >= 1, "need at least one backend server");
        Self { servers, cursor: 0 }
    }

    /// Number of servers in the current list.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Pick the next server.
    pub fn next_server(&mut self) -> usize {
        let s = self.cursor;
        self.cursor = (self.cursor + 1) % self.servers;
        s
    }

    /// Apply a server-list update: install the new list length and
    /// restart the cursor per policy (§7's root cause lives here).
    pub fn update_list(&mut self, worker: WorkerId, servers: usize, policy: RestartPolicy) {
        assert!(servers >= 1, "need at least one backend server");
        self.servers = servers;
        self.cursor = match policy {
            RestartPolicy::FirstServer => 0,
            RestartPolicy::Randomized { seed } => {
                // SplitMix64 over (seed, worker): deterministic, distinct
                // per worker — no RNG dependency in the hot path.
                let mut x = seed ^ (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                x ^= x >> 30;
                x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x ^= x >> 27;
                x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^= x >> 31;
                (x % servers as u64) as usize
            }
        };
    }
}

/// Simulate a fleet of workers distributing `requests_per_worker` requests
/// each, immediately after a synchronized list update. Returns per-server
/// request counts — the §7 imbalance measurement.
pub fn fleet_distribution(
    workers: usize,
    requests_per_worker: usize,
    servers: usize,
    policy: RestartPolicy,
) -> Vec<u64> {
    let mut counts = vec![0u64; servers];
    for w in 0..workers {
        let mut rr = RoundRobin::new(servers);
        rr.update_list(w, servers, policy);
        for _ in 0..requests_per_worker {
            counts[rr.next_server()] += 1;
        }
    }
    counts
}

/// Backend connection pooling arrangement (§7 deployment issue 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolModel {
    /// Each worker keeps its own idle-connection pool.
    PerWorker,
    /// All workers share one pool (the paper's proposed remedy).
    Shared,
}

/// Idle-connection pool simulation with keep-alive expiry: an idle
/// upstream connection can be reused only within `ttl_steps` of its last
/// use (backends close idle connections after a keep-alive timeout).
/// This is what makes pool *fragmentation* costly: spreading requests
/// over per-worker pools multiplies the inter-arrival gap per
/// (pool, server) pair past the keep-alive window, so handshakes —
/// expensive over the Internet to on-prem IDCs — recur (§7 issue 2).
#[derive(Debug)]
pub struct PoolSim {
    model: PoolModel,
    /// Last-use step per `[pool][server]` (`u64::MAX` = never used).
    last_use: Vec<Vec<u64>>,
    /// Keep-alive window in request steps.
    ttl_steps: u64,
    /// Monotone request counter.
    step: u64,
    /// Hits (reused an idle connection).
    pub reused: u64,
    /// Misses (new TCP/TLS handshake to the backend).
    pub handshakes: u64,
}

impl PoolSim {
    /// Build a pool simulation with the given keep-alive window.
    pub fn new(model: PoolModel, workers: usize, servers: usize, ttl_steps: u64) -> Self {
        let pools = match model {
            PoolModel::PerWorker => workers,
            PoolModel::Shared => 1,
        };
        Self {
            model,
            last_use: vec![vec![u64::MAX; servers]; pools],
            ttl_steps,
            step: 0,
            reused: 0,
            handshakes: 0,
        }
    }

    fn pool_of(&self, worker: WorkerId) -> usize {
        match self.model {
            PoolModel::PerWorker => worker,
            PoolModel::Shared => 0,
        }
    }

    /// Worker `w` sends one upstream request to `server`, then returns the
    /// connection to the pool.
    pub fn request(&mut self, w: WorkerId, server: usize) {
        self.step += 1;
        let p = self.pool_of(w);
        let last = self.last_use[p][server];
        if last != u64::MAX && self.step.saturating_sub(last) <= self.ttl_steps {
            self.reused += 1;
        } else {
            self.handshakes += 1;
        }
        self.last_use[p][server] = self.step;
    }

    /// Fraction of upstream requests served from the pool.
    pub fn reuse_rate(&self) -> f64 {
        let total = self.reused + self.handshakes;
        if total == 0 {
            0.0
        } else {
            self.reused as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_metrics_stub::stddev_of;

    /// Tiny local stddev to avoid a dev-dependency cycle with
    /// hermes-metrics (core must stay foundational).
    mod hermes_metrics_stub {
        pub fn stddev_of(v: &[f64]) -> f64 {
            if v.len() < 2 {
                return 0.0;
            }
            let m = v.iter().sum::<f64>() / v.len() as f64;
            (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).sqrt()
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut rr = RoundRobin::new(3);
        assert_eq!(
            (0..7).map(|_| rr.next_server()).collect::<Vec<_>>(),
            vec![0, 1, 2, 0, 1, 2, 0]
        );
    }

    #[test]
    fn synchronized_restarts_overload_first_servers() {
        // §7: 16 workers, 100 servers, only 30 requests each after the
        // list update ⇒ first ~30 servers get 16 requests, the rest 0.
        let counts = fleet_distribution(16, 30, 100, RestartPolicy::FirstServer);
        assert_eq!(counts[0], 16);
        assert_eq!(counts[29], 16);
        assert_eq!(counts[30], 0);
        // "certain servers receiving 2-3x the traffic of others" —
        // here the extreme version: some servers get everything.
    }

    #[test]
    fn randomized_offsets_restore_fairness() {
        let sync = fleet_distribution(16, 30, 100, RestartPolicy::FirstServer);
        let rand = fleet_distribution(16, 30, 100, RestartPolicy::Randomized { seed: 7 });
        let sd = |c: &[u64]| stddev_of(&c.iter().map(|&x| x as f64).collect::<Vec<_>>());
        assert!(
            sd(&rand) < sd(&sync) / 3.0,
            "randomized SD {} vs synchronized SD {}",
            sd(&rand),
            sd(&sync)
        );
        // Every request still lands somewhere.
        assert_eq!(rand.iter().sum::<u64>(), 16 * 30);
    }

    #[test]
    fn randomized_offsets_differ_across_workers() {
        let mut offsets = std::collections::HashSet::new();
        for w in 0..16 {
            let mut rr = RoundRobin::new(1_000);
            rr.update_list(w, 1_000, RestartPolicy::Randomized { seed: 1 });
            offsets.insert(rr.next_server());
        }
        assert!(offsets.len() >= 14, "offsets collide too much: {offsets:?}");
    }

    #[test]
    fn update_list_resizes() {
        let mut rr = RoundRobin::new(5);
        rr.next_server();
        rr.update_list(0, 2, RestartPolicy::FirstServer);
        assert_eq!(rr.servers(), 2);
        assert_eq!(rr.next_server(), 0);
        assert_eq!(rr.next_server(), 1);
        assert_eq!(rr.next_server(), 0);
    }

    /// Pseudo-random server pick (SplitMix-ish), no rand dependency.
    fn server_for(i: usize, servers: usize) -> usize {
        let mut x = i as u64 ^ 0x2545_F491_4F6C_DD1D;
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        (x % servers as u64) as usize
    }

    #[test]
    fn shared_pool_beats_per_worker_reuse() {
        // §7 issue 2: the same request stream, spread evenly over workers
        // (the Hermes effect), reuses far fewer connections with
        // per-worker pools: the per-(pool,server) inter-arrival gap
        // exceeds the keep-alive window.
        let workers = 8;
        let servers = 50;
        let ttl = 100;
        let run = |model| {
            let mut sim = PoolSim::new(model, workers, servers, ttl);
            for i in 0..50_000usize {
                sim.request(i % workers, server_for(i, servers));
            }
            sim.reuse_rate()
        };
        let per_worker = run(PoolModel::PerWorker);
        let shared = run(PoolModel::Shared);
        assert!(shared > 0.8, "shared pool reuse {shared} should be high");
        assert!(
            per_worker < 0.4,
            "per-worker reuse {per_worker} should collapse under spreading"
        );
    }

    #[test]
    fn concentrated_traffic_hides_the_pool_problem() {
        // Under exclusive, one worker carries everything, so per-worker
        // pooling reuses nearly as well as shared — which is why the
        // issue only appeared when Hermes spread the traffic.
        let mut sim = PoolSim::new(PoolModel::PerWorker, 8, 50, 100);
        for i in 0..50_000usize {
            sim.request(0, server_for(i, 50)); // all traffic on worker 0
        }
        assert!(sim.reuse_rate() > 0.8, "rate {}", sim.reuse_rate());
    }

    #[test]
    fn pool_expires_idle_connections() {
        let mut sim = PoolSim::new(PoolModel::Shared, 1, 1, 5);
        sim.request(0, 0); // handshake
        sim.request(0, 0); // reuse (1 step gap)
        for _ in 0..10 {
            sim.step += 1; // quiet period beyond the keep-alive window
        }
        sim.request(0, 0); // expired: handshake again
        assert_eq!(sim.handshakes, 2);
        assert_eq!(sim.reused, 1);
    }

    #[test]
    #[should_panic(expected = "at least one backend")]
    fn zero_servers_rejected() {
        RoundRobin::new(0);
    }
}
