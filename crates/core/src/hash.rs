//! Flow keys and the kernel-style connection hash.
//!
//! Reuseport's default socket selection and Hermes' fine-grained filtering
//! both consume a hash of the connection 4-tuple that the kernel precomputes
//! during demux (Algorithm 2 line 5 notes "this hash value is precomputed by
//! the kernel"). We reproduce the two pieces the paper leans on:
//!
//! * a Jenkins-style 4-tuple hash (`inet_ehashfn` is jhash-based), and
//! * `reciprocal_scale`, the multiplicative range-scaling trick Linux uses
//!   to map a 32-bit hash into `[0, n)` without division.

use serde::{Deserialize, Serialize};

/// A TCP/UDP connection 4-tuple (the LB's VIP side is fixed per port, so
/// source address/port plus destination address/port identify the flow).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowKey {
    /// Client (source) IPv4 address.
    pub src_ip: u32,
    /// Client (source) port.
    pub src_port: u16,
    /// LB-side destination IPv4 address.
    pub dst_ip: u32,
    /// LB-side destination port (the tenant's rewritten Dport).
    pub dst_port: u16,
}

impl FlowKey {
    /// Construct a flow key.
    pub fn new(src_ip: u32, src_port: u16, dst_ip: u32, dst_port: u16) -> Self {
        Self {
            src_ip,
            src_port,
            dst_ip,
            dst_port,
        }
    }

    /// The kernel-precomputed connection hash (jhash over the 4-tuple).
    pub fn hash(&self) -> u32 {
        jhash_3words(
            self.src_ip,
            self.dst_ip,
            ((self.src_port as u32) << 16) | self.dst_port as u32,
            HASH_SEED,
        )
    }
}

/// Fixed seed standing in for the kernel's boot-time `inet_ehash_secret`.
/// Deterministic so experiments are reproducible.
const HASH_SEED: u32 = 0x9747_b28c;

/// `jhash_3words` from the Linux kernel (Bob Jenkins' lookup3 final mix).
pub fn jhash_3words(mut a: u32, mut b: u32, mut c: u32, initval: u32) -> u32 {
    const JHASH_INITVAL: u32 = 0xdeadbeef;
    a = a.wrapping_add(JHASH_INITVAL);
    b = b.wrapping_add(JHASH_INITVAL);
    c = c.wrapping_add(initval);
    // __jhash_final
    c ^= b;
    c = c.wrapping_sub(b.rotate_left(14));
    a ^= c;
    a = a.wrapping_sub(c.rotate_left(11));
    b ^= a;
    b = b.wrapping_sub(a.rotate_left(25));
    c ^= b;
    c = c.wrapping_sub(b.rotate_left(16));
    a ^= c;
    a = a.wrapping_sub(c.rotate_left(4));
    b ^= a;
    b = b.wrapping_sub(a.rotate_left(14));
    c ^= b;
    c = c.wrapping_sub(b.rotate_left(24));
    c
}

/// Linux's `reciprocal_scale`: map a uniformly distributed 32-bit `val`
/// into `[0, ep_ro)` as `(val * ep_ro) >> 32` — one multiply, no division.
///
/// # Panics
/// Panics when `ep_ro == 0`; scaling into an empty range is meaningless and
/// Algorithm 2 guards with `n > 1` before calling.
#[inline]
pub fn reciprocal_scale(val: u32, ep_ro: u32) -> u32 {
    assert!(ep_ro > 0, "reciprocal_scale into empty range");
    ((val as u64 * ep_ro as u64) >> 32) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hash_is_deterministic_and_spreads() {
        let k = FlowKey::new(0x0a00_0001, 40000, 0xc0a8_0001, 443);
        assert_eq!(k.hash(), k.hash());
        let k2 = FlowKey::new(0x0a00_0001, 40001, 0xc0a8_0001, 443);
        assert_ne!(k.hash(), k2.hash(), "adjacent ports should not collide");
    }

    #[test]
    fn reciprocal_scale_bounds() {
        assert_eq!(reciprocal_scale(0, 7), 0);
        assert_eq!(reciprocal_scale(u32::MAX, 7), 6);
        for v in [0u32, 1, 1000, u32::MAX / 2, u32::MAX] {
            assert!(reciprocal_scale(v, 32) < 32);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn reciprocal_scale_zero_range_panics() {
        reciprocal_scale(5, 0);
    }

    #[test]
    fn reciprocal_scale_is_roughly_uniform() {
        // Feed sequential hashes through; each of 8 buckets should receive
        // a reasonable share.
        let n = 80_000u32;
        let mut counts = [0u32; 8];
        for i in 0..n {
            let h = jhash_3words(i, i.wrapping_mul(2654435761), 0, 1);
            counts[reciprocal_scale(h, 8) as usize] += 1;
        }
        for (b, &c) in counts.iter().enumerate() {
            let share = c as f64 / n as f64;
            assert!(
                (share - 0.125).abs() < 0.02,
                "bucket {b} share {share} far from uniform"
            );
        }
    }

    proptest! {
        #[test]
        fn reciprocal_scale_always_in_range(val: u32, n in 1u32..10_000) {
            prop_assert!(reciprocal_scale(val, n) < n);
        }

        #[test]
        fn hash_depends_on_every_field(src_ip: u32, src_port: u16, dst_ip: u32, dst_port: u16) {
            let base = FlowKey::new(src_ip, src_port, dst_ip, dst_port);
            let tweaked = FlowKey::new(src_ip ^ 1, src_port, dst_ip, dst_port);
            // Not a strict guarantee for a hash, but over random draws a
            // systematic collision would indicate a wiring bug; jhash makes
            // accidental equality astronomically unlikely per draw.
            if base != tweaked {
                prop_assert_ne!(base.hash(), tweaked.hash());
            }
        }
    }
}
