//! Per-worker status cell of the Worker Status Table.
//!
//! §5.3.1: each worker owns one partition of the shared-memory WST and is
//! its only writer, so no write locks are needed; the scheduler reads all
//! partitions without read locks. Each of the three status variables is an
//! individually atomic word, so a reader never observes a torn *field* even
//! though a multi-field snapshot may mix generations — the paper argues (and
//! the evaluation confirms) that such cross-field staleness does not perturb
//! scheduling decisions.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// One worker's slot in the WST: the three scheduling metrics of §5.2.1.
///
/// Padded to its own cache line so one worker's updates never cause false
/// sharing with its neighbours' slots.
#[repr(align(128))]
#[derive(Debug)]
pub struct WorkerStatus {
    /// Timestamp (ns) at which the worker last entered its event loop
    /// (line 12 of Fig. 9). A stalled value ⇒ the worker is hung.
    loop_enter_ns: AtomicU64,
    /// Events returned by `epoll_wait` but not yet handled
    /// (`shm_busy_count` in Fig. 9). Signed: decrements race benignly with
    /// batched increments.
    pending_events: AtomicI64,
    /// Concurrent connections accumulated on this worker
    /// (`shm_conn_count` in Fig. 9).
    connections: AtomicI64,
    /// Monotonic write counter bumped by every mutator: lets snapshot
    /// readers skip re-reading a slot whose version has not moved (the
    /// epoch-tagged snapshot cache). Staleness races are benign for the
    /// same reason cross-field skew is (§5.3.1).
    version: AtomicU64,
}

impl Default for WorkerStatus {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerStatus {
    /// A fresh slot: never entered the loop, no pending events, no
    /// connections.
    pub fn new() -> Self {
        Self {
            loop_enter_ns: AtomicU64::new(0),
            pending_events: AtomicI64::new(0),
            connections: AtomicI64::new(0),
            version: AtomicU64::new(0),
        }
    }

    /// Bump the write counter after a mutation.
    #[inline]
    fn touch(&self) {
        self.version.fetch_add(1, Ordering::Release);
    }

    /// `shm_avail_update(current_time)` — record event-loop entry.
    #[inline]
    pub fn enter_loop(&self, now_ns: u64) {
        self.loop_enter_ns.store(now_ns, Ordering::Release);
        self.touch();
    }

    /// `shm_busy_count(event_num)` — add newly returned events to the
    /// pending total (Fig. 9 line 14).
    #[inline]
    pub fn add_pending(&self, n: i64) {
        self.pending_events.fetch_add(n, Ordering::Relaxed);
        self.touch();
    }

    /// `shm_busy_count(-1)` — one event handled (Fig. 9 line 18).
    #[inline]
    pub fn event_done(&self) {
        self.pending_events.fetch_sub(1, Ordering::Relaxed);
        self.touch();
    }

    /// `shm_conn_count(±1)` — connection established (+1, Fig. 9 line 25)
    /// or torn down (−1, line 37).
    #[inline]
    pub fn conn_delta(&self, delta: i64) {
        self.connections.fetch_add(delta, Ordering::Relaxed);
        self.touch();
    }

    /// Current write-counter value (see [`crate::wst::Wst::epoch`]).
    #[inline]
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Loop-entry timestamp in nanoseconds.
    #[inline]
    pub fn loop_enter(&self) -> u64 {
        self.loop_enter_ns.load(Ordering::Acquire)
    }

    /// Pending (triggered but unhandled) event count, clamped at zero for
    /// consumers: transient negatives can appear between a decrement and the
    /// batched increment that logically preceded it.
    #[inline]
    pub fn pending(&self) -> i64 {
        self.pending_events.load(Ordering::Relaxed).max(0)
    }

    /// Accumulated connection count, clamped at zero.
    #[inline]
    pub fn connections(&self) -> i64 {
        self.connections.load(Ordering::Relaxed).max(0)
    }

    /// Read all three fields. Each field is individually consistent; the
    /// triple may span a concurrent update (§5.3.1 accepts this).
    pub fn snapshot(&self) -> WorkerSnapshot {
        WorkerSnapshot {
            loop_enter_ns: self.loop_enter(),
            pending_events: self.pending(),
            connections: self.connections(),
        }
    }

    /// Reset to the just-constructed state (worker restart).
    pub fn reset(&self) {
        self.loop_enter_ns.store(0, Ordering::Release);
        self.pending_events.store(0, Ordering::Relaxed);
        self.connections.store(0, Ordering::Relaxed);
        self.touch();
    }
}

/// A point-in-time copy of one worker's metrics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerSnapshot {
    /// Last event-loop entry (ns).
    pub loop_enter_ns: u64,
    /// Pending event count.
    pub pending_events: i64,
    /// Accumulated connection count.
    pub connections: i64,
}

impl WorkerSnapshot {
    /// Whether this worker counts as hung at `now_ns` given a hang
    /// threshold: its loop-entry timestamp has not advanced for at least
    /// the threshold (Algorithm 1, FilterTime). A worker that never
    /// entered the loop reads as entered-at-0 and trips the filter once
    /// the threshold elapses — exactly the paper's timestamp comparison,
    /// with no special cases.
    pub fn is_hung(&self, now_ns: u64, threshold_ns: u64) -> bool {
        now_ns.saturating_sub(self.loop_enter_ns) >= threshold_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fresh_slot_is_zeroed() {
        let s = WorkerStatus::new();
        let snap = s.snapshot();
        assert_eq!(snap.loop_enter_ns, 0);
        assert_eq!(snap.pending_events, 0);
        assert_eq!(snap.connections, 0);
    }

    #[test]
    fn fig9_hook_sequence() {
        let s = WorkerStatus::new();
        s.enter_loop(1_000);
        s.add_pending(3); // epoll_wait returned 3 events
        s.event_done();
        s.event_done();
        s.conn_delta(1);
        let snap = s.snapshot();
        assert_eq!(snap.loop_enter_ns, 1_000);
        assert_eq!(snap.pending_events, 1);
        assert_eq!(snap.connections, 1);
    }

    #[test]
    fn pending_clamps_transient_negative() {
        let s = WorkerStatus::new();
        s.event_done(); // decrement races ahead of increment
        assert_eq!(s.pending(), 0);
        s.add_pending(1);
        assert_eq!(s.pending(), 0); // -1 + 1
    }

    #[test]
    fn hang_detection_thresholds() {
        let mut snap = WorkerSnapshot {
            loop_enter_ns: 0,
            pending_events: 0,
            connections: 0,
        };
        // Never entered: fine while young, hung once the threshold passes.
        assert!(!snap.is_hung(10, 100));
        assert!(snap.is_hung(100, 100));
        snap.loop_enter_ns = 1_000;
        assert!(!snap.is_hung(1_050, 100));
        assert!(snap.is_hung(1_100, 100)); // exactly at threshold counts as hung
        assert!(snap.is_hung(9_999, 100));
    }

    #[test]
    fn reset_restores_initial_state() {
        let s = WorkerStatus::new();
        s.enter_loop(5);
        s.add_pending(2);
        s.conn_delta(7);
        s.reset();
        assert_eq!(s.snapshot().loop_enter_ns, 0);
        assert_eq!(s.pending(), 0);
        assert_eq!(s.connections(), 0);
    }

    #[test]
    fn every_mutator_bumps_version() {
        let s = WorkerStatus::new();
        assert_eq!(s.version(), 0);
        s.enter_loop(1);
        s.add_pending(2);
        s.event_done();
        s.conn_delta(1);
        s.reset();
        assert_eq!(s.version(), 5);
        // Reads leave the version alone.
        let _ = s.snapshot();
        let _ = s.pending();
        assert_eq!(s.version(), 5);
    }

    #[test]
    fn slot_is_cache_line_padded() {
        assert!(std::mem::align_of::<WorkerStatus>() >= 128);
        assert!(std::mem::size_of::<WorkerStatus>() >= 128);
    }

    #[test]
    fn concurrent_updates_from_owner_and_reader() {
        // One writer thread (the owning worker) and one reader thread (a
        // scheduler) must never deadlock or tear individual fields.
        let s = Arc::new(WorkerStatus::new());
        let w = Arc::clone(&s);
        let writer = std::thread::spawn(move || {
            for t in 1..=10_000u64 {
                w.enter_loop(t);
                w.add_pending(2);
                w.event_done();
                w.event_done();
                w.conn_delta(1);
                w.conn_delta(-1);
            }
        });
        let r = Arc::clone(&s);
        let reader = std::thread::spawn(move || {
            for _ in 0..10_000 {
                let snap = r.snapshot();
                assert!(snap.loop_enter_ns <= 10_000);
                assert!(snap.pending_events >= 0);
                assert!(snap.connections >= 0);
            }
        });
        writer.join().unwrap();
        reader.join().unwrap();
        assert_eq!(s.pending(), 0);
        assert_eq!(s.connections(), 0);
    }
}
