//! Tenant anomaly detection and sandbox isolation (Appendix C, exception
//! case 2 and the single-worker-hang aftermath).
//!
//! Two production policies from the paper:
//!
//! * "Hermes leverages anomaly detection techniques to identify malicious
//!   traffic patterns [SYN flood / Challenge Collapsar] and promptly
//!   migrates the directly affected tenants to isolated sandboxes" —
//!   [`AttackDetector`], an EWMA spike detector over per-tenant
//!   connection rates.
//! * "tenants that frequently trigger worker hangs are migrated to a
//!   sandbox, enabling physical isolation" — [`HangLedger`], a per-tenant
//!   hang-attribution counter with an isolation threshold.

use std::collections::HashMap;

/// Tenant identifier (matches `hermes_workload`'s dense tenant ids).
pub type TenantId = u16;

/// EWMA-based per-tenant traffic spike detector.
///
/// A tenant is flagged when its observed rate exceeds both an absolute
/// floor (tiny tenants bursting 0→10 CPS are not attacks) and a
/// multiplicative factor over its own smoothed baseline.
#[derive(Clone, Debug)]
pub struct AttackDetector {
    /// EWMA smoothing factor for the baseline (0 < alpha <= 1).
    alpha: f64,
    /// Flag when rate > `spike_factor` × baseline.
    spike_factor: f64,
    /// Never flag below this absolute rate (conns/s).
    min_rate: f64,
    baselines: HashMap<TenantId, f64>,
}

impl AttackDetector {
    /// Build a detector.
    pub fn new(alpha: f64, spike_factor: f64, min_rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&alpha) && alpha > 0.0,
            "alpha in (0,1]"
        );
        assert!(spike_factor > 1.0, "spike factor must exceed 1");
        assert!(min_rate >= 0.0, "min rate must be non-negative");
        Self {
            alpha,
            spike_factor,
            min_rate,
            baselines: HashMap::new(),
        }
    }

    /// Production-ish defaults: 10× spike over a slow baseline, 1k CPS
    /// floor.
    pub fn default_policy() -> Self {
        Self::new(0.2, 10.0, 1_000.0)
    }

    /// Prime a tenant's baseline (e.g. from historical telemetry). Without
    /// priming, the first observation *becomes* the baseline — a detector
    /// started mid-attack would adopt the attack rate as normal, so
    /// deployments restore baselines across restarts.
    pub fn prime(&mut self, tenant: TenantId, baseline_rate: f64) {
        self.baselines.insert(tenant, baseline_rate);
    }

    /// Feed one observation interval for `tenant` at `rate` conns/s.
    /// Returns true when this interval looks like an attack. The baseline
    /// only absorbs non-flagged intervals, so a sustained attack stays
    /// flagged instead of normalizing itself.
    pub fn observe(&mut self, tenant: TenantId, rate: f64) -> bool {
        let baseline = self.baselines.entry(tenant).or_insert(rate);
        let spike = rate > self.min_rate && rate > self.spike_factor * *baseline;
        if !spike {
            *baseline = self.alpha * rate + (1.0 - self.alpha) * *baseline;
        }
        spike
    }

    /// Current baseline for a tenant (testing/monitoring).
    pub fn baseline(&self, tenant: TenantId) -> Option<f64> {
        self.baselines.get(&tenant).copied()
    }
}

/// Per-tenant hang attribution with an isolation threshold.
#[derive(Clone, Debug)]
pub struct HangLedger {
    threshold: u32,
    counts: HashMap<TenantId, u32>,
    isolated: Vec<TenantId>,
}

impl HangLedger {
    /// Isolate a tenant after `threshold` attributed hangs.
    pub fn new(threshold: u32) -> Self {
        assert!(threshold >= 1, "threshold must be at least 1");
        Self {
            threshold,
            counts: HashMap::new(),
            isolated: Vec::new(),
        }
    }

    /// Attribute one worker hang to `tenant` (e.g. the tenant owning the
    /// request that trapped the event loop). Returns true when this
    /// crosses the threshold and the tenant should move to the sandbox.
    pub fn record_hang(&mut self, tenant: TenantId) -> bool {
        if self.isolated.contains(&tenant) {
            return false; // already sandboxed
        }
        let c = self.counts.entry(tenant).or_insert(0);
        *c += 1;
        if *c >= self.threshold {
            self.isolated.push(tenant);
            true
        } else {
            false
        }
    }

    /// Tenants currently in the sandbox.
    pub fn isolated(&self) -> &[TenantId] {
        &self.isolated
    }

    /// Hangs attributed to `tenant` so far.
    pub fn count(&self, tenant: TenantId) -> u32 {
        self.counts.get(&tenant).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_traffic_is_never_flagged() {
        let mut d = AttackDetector::default_policy();
        for _ in 0..100 {
            assert!(!d.observe(1, 5_000.0));
        }
        assert!((d.baseline(1).unwrap() - 5_000.0).abs() < 1.0);
    }

    #[test]
    fn cc_spike_is_flagged_and_baseline_holds() {
        let mut d = AttackDetector::default_policy();
        for _ in 0..20 {
            d.observe(7, 2_000.0);
        }
        // Challenge Collapsar: rate jumps 50x.
        assert!(d.observe(7, 100_000.0));
        // Sustained attack keeps flagging — baseline must not absorb it.
        for _ in 0..50 {
            assert!(d.observe(7, 100_000.0));
        }
        assert!(d.baseline(7).unwrap() < 3_000.0);
    }

    #[test]
    fn small_tenants_bursting_are_not_attacks() {
        let mut d = AttackDetector::default_policy();
        d.observe(3, 2.0);
        // 100x spike but under the absolute floor.
        assert!(!d.observe(3, 200.0));
    }

    #[test]
    fn growth_is_absorbed_gradually() {
        // Organic 30%/interval growth never crosses the 10x factor.
        let mut d = AttackDetector::default_policy();
        let mut rate = 2_000.0;
        for _ in 0..30 {
            assert!(!d.observe(9, rate), "flagged at rate {rate}");
            rate *= 1.3;
        }
    }

    #[test]
    fn hang_ledger_isolates_repeat_offenders() {
        let mut l = HangLedger::new(3);
        assert!(!l.record_hang(5));
        assert!(!l.record_hang(5));
        assert!(l.record_hang(5)); // third strike
        assert_eq!(l.isolated(), &[5]);
        // Further hangs by an isolated tenant do not re-trigger.
        assert!(!l.record_hang(5));
        assert_eq!(l.count(5), 3);
        // Other tenants tracked independently.
        assert!(!l.record_hang(6));
        assert_eq!(l.count(6), 1);
    }

    #[test]
    #[should_panic(expected = "spike factor")]
    fn rejects_degenerate_factor() {
        AttackDetector::new(0.2, 1.0, 100.0);
    }
}
