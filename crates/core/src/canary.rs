//! Canary-release connection-drain model (§6.2, Fig. 11's tail).
//!
//! Hermes rolled out via canary release: new-version VMs join the
//! cluster, old-version VMs stop accepting *new* connections but keep
//! serving established ones until they drain. How long that takes depends
//! on the client mix — "some mobile clients drop connections quickly due
//! to network changes, while IoT clients or cloud services may keep
//! connections alive for a long time". In Region1 probes kept reaching
//! old VMs for up to 11 days.
//!
//! The drain is a mixture of exponential lifetimes, one component per
//! client class.

/// One client class: a share of connections with a mean lifetime.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClientClass {
    /// Fraction of established connections (mixture weight).
    pub share: f64,
    /// Mean connection lifetime in days.
    pub mean_lifetime_days: f64,
}

/// A connection-drain model over a mixture of client classes.
#[derive(Clone, Debug)]
pub struct DrainModel {
    classes: Vec<ClientClass>,
}

impl DrainModel {
    /// Build from classes; shares must sum to ~1.
    pub fn new(classes: Vec<ClientClass>) -> Self {
        assert!(!classes.is_empty(), "need at least one client class");
        let total: f64 = classes.iter().map(|c| c.share).sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "class shares must sum to 1 (got {total})"
        );
        assert!(
            classes
                .iter()
                .all(|c| c.share >= 0.0 && c.mean_lifetime_days > 0.0),
            "shares must be non-negative and lifetimes positive"
        );
        Self { classes }
    }

    /// The paper's Region1-like mix: mostly mobile/web, a stubborn
    /// IoT/cloud tail that keeps probes flowing to old VMs for ~11 days.
    pub fn region1_like() -> Self {
        Self::new(vec![
            ClientClass {
                share: 0.70,
                mean_lifetime_days: 0.02, // mobile: ~30 minutes
            },
            ClientClass {
                share: 0.25,
                mean_lifetime_days: 0.5, // web/keep-alive: ~half a day
            },
            ClientClass {
                share: 0.05,
                mean_lifetime_days: 1.8, // IoT / cloud services
            },
        ])
    }

    /// A fast-draining mix (the paper's Region2: "connections drained
    /// faster, and probes quickly shifted to new VMs").
    pub fn region2_like() -> Self {
        Self::new(vec![
            ClientClass {
                share: 0.9,
                mean_lifetime_days: 0.02,
            },
            ClientClass {
                share: 0.1,
                mean_lifetime_days: 0.3,
            },
        ])
    }

    /// Fraction of the original connections still alive after `t` days.
    pub fn remaining(&self, t_days: f64) -> f64 {
        assert!(t_days >= 0.0, "time must be non-negative");
        self.classes
            .iter()
            .map(|c| c.share * (-t_days / c.mean_lifetime_days).exp())
            .sum()
    }

    /// Daily remaining-fraction series for `days` days (index 0 = release
    /// day).
    pub fn drain_series(&self, days: usize) -> Vec<f64> {
        (0..=days).map(|d| self.remaining(d as f64)).collect()
    }

    /// First day on which the remaining fraction falls below `epsilon`
    /// (probes effectively stop reaching old VMs).
    pub fn days_to_drain(&self, epsilon: f64) -> u32 {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon in (0,1)");
        let mut d = 0u32;
        while self.remaining(d as f64) >= epsilon {
            d += 1;
            if d > 10_000 {
                break; // pathological mixes: refuse to loop forever
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remaining_is_monotone_decreasing_from_one() {
        let m = DrainModel::region1_like();
        assert!((m.remaining(0.0) - 1.0).abs() < 1e-12);
        let series = m.drain_series(14);
        for w in series.windows(2) {
            assert!(w[1] < w[0]);
        }
    }

    #[test]
    fn region1_tail_lasts_on_the_order_of_11_days() {
        // Fig. 11: "lasting up to 11 days until all connections expired".
        // With ~10k conns per VM, "all expired" ≈ remaining < 1e-4.
        let d = DrainModel::region1_like().days_to_drain(1e-4);
        assert!(
            (8..=16).contains(&d),
            "Region1-like drain took {d} days (paper: ~11)"
        );
    }

    #[test]
    fn region2_drains_much_faster() {
        let r1 = DrainModel::region1_like().days_to_drain(1e-3);
        let r2 = DrainModel::region2_like().days_to_drain(1e-3);
        assert!(r2 < r1 / 2, "r2 {r2} vs r1 {r1}");
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn shares_must_sum_to_one() {
        DrainModel::new(vec![ClientClass {
            share: 0.5,
            mean_lifetime_days: 1.0,
        }]);
    }

    #[test]
    fn degenerate_single_class() {
        let m = DrainModel::new(vec![ClientClass {
            share: 1.0,
            mean_lifetime_days: 1.0,
        }]);
        // Pure exponential: remaining(1) = 1/e.
        assert!((m.remaining(1.0) - (-1.0f64).exp()).abs() < 1e-12);
    }
}
