//! 64-bit worker availability bitmap.
//!
//! §5.3.2: scheduling results are carried from userspace to the kernel as a
//! bitmap packed into one 64-bit integer ("1 = available"), because a plain
//! array would need explicit locking while a single word updates atomically.
//! §5.4 then selects a worker from the bitmap with classic bit tricks:
//! population count and *find the Nth set bit* (branchless rank/select from
//! the Bit Twiddling Hacks collection the paper cites).
//!
//! The same packing doubles as the flight recorder's payload convention:
//! `hermes-trace` records carry bitmaps verbatim as one `u64` payload word
//! (`SchedStage`, `SchedDecision` and `BitmapPublish` events), so a trace
//! of successive stage bitmaps can be diffed bit-by-bit to answer exactly
//! which cascade stage rejected which worker.

use crate::WorkerId;

/// A set of available workers encoded in a `u64` (bit `i` ⇒ worker `i`).
///
/// ```
/// use hermes_core::WorkerBitmap;
/// let bm = WorkerBitmap::from_workers([0, 3, 4]);
/// assert_eq!(bm.count(), 3);
/// assert_eq!(bm.nth_set_bit(2), Some(3)); // rank-select, 1-based
/// assert!(!bm.contains(1));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct WorkerBitmap(pub u64);

/// Workers a single bitmap word can carry — the §7 scaling limit that
/// forces grouped (two-level) dispatch beyond one atomic `u64`. Shared by
/// the native dispatcher and the eBPF program emitters so their group-size
/// asserts cannot drift apart.
pub const MAX_WORKERS_PER_GROUP: usize = 64;

impl WorkerBitmap {
    /// The empty set.
    pub const EMPTY: WorkerBitmap = WorkerBitmap(0);

    /// A bitmap with workers `0..n` all set (`Array2INT` of a full worker
    /// list).
    pub fn all(n: usize) -> Self {
        assert!(
            n <= MAX_WORKERS_PER_GROUP,
            "bitmap holds at most {MAX_WORKERS_PER_GROUP} workers"
        );
        if n == MAX_WORKERS_PER_GROUP {
            WorkerBitmap(u64::MAX)
        } else {
            WorkerBitmap((1u64 << n) - 1)
        }
    }

    /// Build from an iterator of worker ids (`Array2INT` in Algorithm 1).
    pub fn from_workers<I: IntoIterator<Item = WorkerId>>(ids: I) -> Self {
        let mut bits = 0u64;
        for id in ids {
            assert!(id < 64, "worker id {id} exceeds bitmap capacity");
            bits |= 1u64 << id;
        }
        WorkerBitmap(bits)
    }

    /// Whether worker `id` is present.
    #[inline]
    pub fn contains(&self, id: WorkerId) -> bool {
        id < 64 && (self.0 >> id) & 1 == 1
    }

    /// Insert worker `id`.
    #[inline]
    pub fn insert(&mut self, id: WorkerId) {
        assert!(id < 64, "worker id {id} exceeds bitmap capacity");
        self.0 |= 1u64 << id;
    }

    /// Remove worker `id`.
    #[inline]
    pub fn remove(&mut self, id: WorkerId) {
        if id < 64 {
            self.0 &= !(1u64 << id);
        }
    }

    /// `CountNonZeroBits` — number of available workers (Algorithm 2 line 3).
    #[inline]
    pub fn count(&self) -> u32 {
        self.0.count_ones()
    }

    /// True when no worker is available.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// `FindNthNonZeroBit` — position of the `nth` set bit, 1-based
    /// (Algorithm 2 line 6). Returns `None` when fewer than `nth` bits are
    /// set or `nth == 0`.
    ///
    /// Implemented as a branchless binary rank/select over popcounts of
    /// halves, the same ladder an eBPF program must use because the verifier
    /// forbids loops (§5.1.3); `hermes-ebpf` runs the bytecode twin of this
    /// function and is property-tested for equivalence against it.
    pub fn nth_set_bit(&self, nth: u32) -> Option<WorkerId> {
        if nth == 0 || nth > self.count() {
            return None;
        }
        let v = self.0;
        let mut r = nth;
        let mut pos = 0u32;
        // At each rung inspect the lower half of the remaining window: if it
        // holds >= r set bits the answer is inside, otherwise skip it.
        let mut width = 32u32;
        while width > 0 {
            let low_mask = if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let low = ((v >> pos) & low_mask).count_ones();
            if low < r {
                r -= low;
                pos += width;
            }
            width /= 2;
        }
        Some(pos as usize)
    }

    /// Iterate the set worker ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = WorkerId> + '_ {
        let bits = self.0;
        (0..64usize).filter(move |i| (bits >> i) & 1 == 1)
    }
}

impl std::fmt::Display for WorkerBitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

impl FromIterator<WorkerId> for WorkerBitmap {
    fn from_iter<I: IntoIterator<Item = WorkerId>>(iter: I) -> Self {
        Self::from_workers(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn all_and_empty() {
        assert_eq!(WorkerBitmap::all(0), WorkerBitmap::EMPTY);
        assert_eq!(WorkerBitmap::all(3).0, 0b111);
        assert_eq!(WorkerBitmap::all(64).0, u64::MAX);
        assert!(WorkerBitmap::EMPTY.is_empty());
    }

    #[test]
    fn paper_example_11001() {
        // §5.3.2: "{1, 1, 0, 0, 1} indicates that workers with ID 1, 2, and 5
        // are selected", bitmap written 11001. With our 0-based bit-`i` ⇒
        // worker-`i` encoding that set is {0, 3, 4}.
        let bm = WorkerBitmap(0b11001);
        assert_eq!(bm.count(), 3);
        assert_eq!(bm.iter().collect::<Vec<_>>(), vec![0, 3, 4]);
        assert_eq!(bm.nth_set_bit(1), Some(0));
        assert_eq!(bm.nth_set_bit(2), Some(3));
        assert_eq!(bm.nth_set_bit(3), Some(4));
        assert_eq!(bm.nth_set_bit(4), None);
    }

    #[test]
    fn insert_remove_contains() {
        let mut bm = WorkerBitmap::EMPTY;
        bm.insert(7);
        bm.insert(63);
        assert!(bm.contains(7) && bm.contains(63));
        assert!(!bm.contains(8));
        bm.remove(7);
        assert!(!bm.contains(7));
        bm.remove(99); // out-of-range removal is a no-op
        assert_eq!(bm.count(), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds bitmap capacity")]
    fn insert_out_of_range_panics() {
        let mut bm = WorkerBitmap::EMPTY;
        bm.insert(64);
    }

    #[test]
    fn nth_set_bit_edges() {
        let bm = WorkerBitmap(1u64 << 63);
        assert_eq!(bm.nth_set_bit(1), Some(63));
        assert_eq!(bm.nth_set_bit(0), None);
        assert_eq!(WorkerBitmap(u64::MAX).nth_set_bit(64), Some(63));
        assert_eq!(WorkerBitmap(u64::MAX).nth_set_bit(1), Some(0));
        assert_eq!(WorkerBitmap::EMPTY.nth_set_bit(1), None);
    }

    #[test]
    fn from_workers_round_trips() {
        let ids = vec![0usize, 5, 13, 41, 63];
        let bm: WorkerBitmap = ids.iter().copied().collect();
        assert_eq!(bm.iter().collect::<Vec<_>>(), ids);
    }

    proptest! {
        /// nth_set_bit agrees with a naive scan for all bitmaps and ranks.
        #[test]
        fn nth_set_bit_matches_naive(bits: u64, nth in 0u32..=65) {
            let bm = WorkerBitmap(bits);
            let naive = {
                let mut seen = 0;
                let mut ans = None;
                for i in 0..64 {
                    if (bits >> i) & 1 == 1 {
                        seen += 1;
                        if seen == nth {
                            ans = Some(i as usize);
                            break;
                        }
                    }
                }
                ans
            };
            prop_assert_eq!(bm.nth_set_bit(nth), naive);
        }

        /// Round trip: from_workers(iter()) is the identity.
        #[test]
        fn iter_round_trip(bits: u64) {
            let bm = WorkerBitmap(bits);
            let back: WorkerBitmap = bm.iter().collect();
            prop_assert_eq!(back, bm);
        }

        /// count matches iterator length.
        #[test]
        fn count_matches_iter(bits: u64) {
            let bm = WorkerBitmap(bits);
            prop_assert_eq!(bm.count() as usize, bm.iter().count());
        }
    }
}
