//! Atomics facade for the model-checked kernel-sync cells.
//!
//! Normal builds re-export `std::sync::atomic`; building with
//! `RUSTFLAGS="--cfg loom"` swaps in loom's model-checked atomics so
//! `selmap::loom_tests` can exhaustively explore writer/reader
//! interleavings of [`crate::SelMap`]. Loom is deliberately **not** a
//! listed dependency (the workspace builds offline); the loom lane in
//! `scripts/ci.sh` documents how to wire it up locally.

#[cfg(loom)]
pub(crate) use loom::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
