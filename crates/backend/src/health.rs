//! Per-backend health: the state machine and the shared atomic cells.
//!
//! The state machine is deliberately small — the states a production LB's
//! control plane actually distinguishes (§7: canary drains, slow VMs,
//! crashed VMs):
//!
//! ```text
//!            ┌───────────── recover ─────────────┐
//!            ▼                                   │
//!        Healthy ◄──── recover ──── Slow         │
//!           │  ▲                     │           │
//!           │  └── cancel ─┐         │           │
//!         drain            │       drain         │
//!           │              │         │           │
//!           ▼              │         ▼           │
//!        Draining ─────────┴──── (same node)     │
//!           │                                    │
//!          down ────────────► Down ──────────────┘
//! ```
//!
//! * `Healthy` / `Slow` accept new connections (`Slow` is degraded but
//!   serving — selection keeps it, operators watch it).
//! * `Draining` takes no *new* connections but keeps serving in-flight
//!   ones (the canary-release drain of Fig. 11).
//! * `Down` serves nothing; in-flight connections must retry elsewhere.
//!
//! Health is stored once per pool in [`HealthCells`] — an atomic byte per
//! backend — and shared by every published table version, so a connection
//! pinned to a retired version still observes its backend dying.

use std::sync::atomic::{AtomicU8, Ordering};

/// One backend's health, as the control plane sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum HealthState {
    /// Serving normally: accepts new connections.
    Healthy = 0,
    /// Degraded (slow responses) but serving: still accepts new
    /// connections; the slow-backend scenario measures its latency cost.
    Slow = 1,
    /// Being drained (canary rollout, maintenance): serves in-flight
    /// connections, accepts no new ones.
    Draining = 2,
    /// Gone: serves nothing.
    Down = 3,
}

impl HealthState {
    /// Whether a backend in this state may be selected for *new*
    /// connections.
    #[inline]
    pub fn accepts_new(self) -> bool {
        matches!(self, HealthState::Healthy | HealthState::Slow)
    }

    /// Whether a backend in this state keeps serving connections admitted
    /// *before* the state change.
    #[inline]
    pub fn serves_in_flight(self) -> bool {
        !matches!(self, HealthState::Down)
    }

    /// Legal control-plane transitions. Self-transitions are rejected
    /// (they would republish a table for no observable change), and a
    /// `Down` backend must come back as `Healthy` before being slowed or
    /// drained again.
    pub fn can_transition(self, to: HealthState) -> bool {
        use HealthState::*;
        match (self, to) {
            (a, b) if a == b => false,
            (Down, Healthy) => true,
            (Down, _) => false,
            // Healthy / Slow / Draining move freely among themselves and
            // may always crash to Down.
            (_, _) => true,
        }
    }

    /// Decode the atomic-cell byte.
    #[inline]
    pub fn from_u8(v: u8) -> HealthState {
        match v {
            0 => HealthState::Healthy,
            1 => HealthState::Slow,
            2 => HealthState::Draining,
            _ => HealthState::Down,
        }
    }

    /// Stable lowercase name for exports.
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Slow => "slow",
            HealthState::Draining => "draining",
            HealthState::Down => "down",
        }
    }
}

/// The live health array shared by the pool and every published table
/// version: one atomic byte per backend. Readers pay a single relaxed
/// load; only the control plane stores.
#[derive(Debug)]
pub struct HealthCells {
    cells: Box<[AtomicU8]>,
}

impl HealthCells {
    /// All-`Healthy` cells for `n` backends.
    pub fn new(n: usize) -> Self {
        Self {
            cells: (0..n).map(|_| AtomicU8::new(HealthState::Healthy as u8)).collect(),
        }
    }

    /// Number of backends.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the pool is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Current state of backend `b`.
    #[inline]
    pub fn get(&self, b: usize) -> HealthState {
        HealthState::from_u8(self.cells[b].load(Ordering::Relaxed))
    }

    /// Store a new state for backend `b` (control plane only).
    #[inline]
    pub(crate) fn set(&self, b: usize, s: HealthState) {
        self.cells[b].store(s as u8, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use HealthState::*;

    #[test]
    fn predicates_match_the_drain_semantics() {
        assert!(Healthy.accepts_new() && Healthy.serves_in_flight());
        assert!(Slow.accepts_new() && Slow.serves_in_flight());
        assert!(!Draining.accepts_new() && Draining.serves_in_flight());
        assert!(!Down.accepts_new() && !Down.serves_in_flight());
    }

    #[test]
    fn transition_rules() {
        // The canonical lifecycle: Healthy → Draining → Down → Healthy.
        assert!(Healthy.can_transition(Draining));
        assert!(Draining.can_transition(Down));
        assert!(Down.can_transition(Healthy));
        // Drain cancel and slow/recover.
        assert!(Draining.can_transition(Healthy));
        assert!(Healthy.can_transition(Slow));
        assert!(Slow.can_transition(Healthy));
        assert!(Slow.can_transition(Draining));
        // Illegal: self-transitions, resurrecting into a degraded state.
        for s in [Healthy, Slow, Draining, Down] {
            assert!(!s.can_transition(s), "{s:?} -> {s:?} must be rejected");
        }
        assert!(!Down.can_transition(Slow));
        assert!(!Down.can_transition(Draining));
    }

    #[test]
    fn cells_round_trip_states() {
        let cells = HealthCells::new(3);
        assert_eq!(cells.len(), 3);
        assert_eq!(cells.get(1), Healthy);
        cells.set(1, Draining);
        assert_eq!(cells.get(1), Draining);
        cells.set(1, Down);
        assert_eq!(HealthState::from_u8(cells.get(1) as u8), Down);
        assert_eq!(cells.get(0), Healthy, "other cells untouched");
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Healthy.name(), "healthy");
        assert_eq!(Down.name(), "down");
    }
}
