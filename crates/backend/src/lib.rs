//! # hermes-backend
//!
//! The backend-side data plane of the L7 load balancer. Hermes gets a
//! connection to the *right worker* fast (userspace-directed dispatch);
//! this crate is what that worker does next: pick a backend server and
//! keep forwarding to it while the pool churns.
//!
//! Design, borrowed from two places the repo already trusts:
//!
//! * **Epoch-versioned frozen tables** (the map-registry idiom): the
//!   control plane mutates a [`BackendPool`] under a lock and *publishes*
//!   an immutable [`BackendTable`] snapshot per change. A connection
//!   captures an `Arc` of the table it was admitted under, so its request
//!   path resolves backends with zero locks — an `Arc` deref plus one
//!   relaxed atomic health load — and is immune to later pool changes.
//! * **O(1) stateless selection** (Concury-style): each table carries a
//!   dense power-of-two slot array; selection is `slots[mix(hash) & mask]`,
//!   keyed on the connection 5-tuple hash. Per-connection consistency
//!   falls out of version pinning: the same hash against the same table
//!   always yields the same backend, and the table never changes. Only
//!   when every backend of the admitted version has gone [`HealthState::Down`]
//!   does resolution fall back to the live table (version retirement).
//!
//! Health is *shared* across versions through [`HealthCells`] — one atomic
//! byte per backend — so an old table can observe that its pinned backend
//! died without any republish reaching it.
//!
//! The crate also absorbs the §7 "Experiences" models that previously
//! lived in `hermes_core::backend`: the synchronized-round-robin-restart
//! imbalance ([`RoundRobin`], [`fleet_distribution`]) and the
//! keep-alive connection-pool fragmentation ([`PoolSim`]). `hermes-core`
//! re-exports them from here, so there is one source of truth.

pub mod health;
pub mod pool;
pub mod poolsim;
pub mod rr;
pub mod table;

pub use health::{HealthCells, HealthState};
pub use pool::{BackendPool, TableCache};
pub use poolsim::{PoolModel, PoolSim};
pub use rr::{fleet_distribution, RestartPolicy, RoundRobin};
pub use table::{Admission, BackendTable, Resolution};

/// Dense backend index within a pool.
pub type BackendId = usize;
