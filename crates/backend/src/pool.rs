//! The backend pool control plane: health mutation and table publishing.
//!
//! [`BackendPool`] is the single writer. Every accepted health transition
//! rebuilds the admit set and publishes a fresh frozen [`BackendTable`]
//! under the pool's lock — the same publish-on-change discipline as the
//! map registry. Readers never take that lock: the request path holds an
//! `Arc` to an already-published table (via [`crate::Admission`]), and
//! the accept path uses [`BackendPool::cached`], which pays one relaxed
//! atomic load per accept and locks only when the version actually moved.

use crate::health::{HealthCells, HealthState};
use crate::table::BackendTable;
use crate::BackendId;
use hermes_trace::{trace_event, EventKind, CONTROL_LANE};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

struct Inner {
    table: Arc<BackendTable>,
    next_version: u64,
}

/// Control plane for one set of backends: owns the shared health cells,
/// accepts state transitions, and publishes epoch-versioned tables.
pub struct BackendPool {
    health: Arc<HealthCells>,
    /// Mirrors the published table's version for the lock-free fast path.
    version: AtomicU64,
    inner: Mutex<Inner>,
}

impl BackendPool {
    /// A pool of `n` backends, all `Healthy`, publishing table version 1.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one backend");
        let health = Arc::new(HealthCells::new(n));
        let table = Arc::new(BackendTable::build(
            1,
            (0..n).collect(),
            Arc::clone(&health),
        ));
        Self {
            health,
            version: AtomicU64::new(1),
            inner: Mutex::new(Inner {
                table,
                next_version: 2,
            }),
        }
    }

    /// Number of backends in the pool.
    #[inline]
    pub fn len(&self) -> usize {
        self.health.len()
    }

    /// Whether the pool has no backends (never true: `new` requires one).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.health.is_empty()
    }

    /// Version of the currently published table.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Relaxed)
    }

    /// Live health of backend `b`.
    #[inline]
    pub fn health(&self, b: BackendId) -> HealthState {
        self.health.get(b)
    }

    /// The currently published table (locks briefly; the accept path
    /// should prefer [`BackendPool::cached`]).
    pub fn table(&self) -> Arc<BackendTable> {
        Arc::clone(&self.inner.lock().expect("pool lock poisoned").table)
    }

    /// The currently published table through a per-caller cache: one
    /// relaxed load when the version has not moved, a lock only when it
    /// has. This is the accept-path entry point.
    pub fn cached(&self, cache: &mut TableCache) -> Arc<BackendTable> {
        let v = self.version.load(Ordering::Relaxed);
        if let Some(t) = &cache.table {
            if cache.version == v {
                return Arc::clone(t);
            }
        }
        let t = self.table();
        cache.version = t.version();
        cache.table = Some(Arc::clone(&t));
        t
    }

    /// Apply a health transition at simulated/wall time `now_ns`. Returns
    /// `false` (and changes nothing) if the transition is illegal per
    /// [`HealthState::can_transition`]; otherwise updates the shared cell,
    /// publishes a new table version, and emits the matching trace event
    /// (`BackendUp` / `BackendDrain` / `BackendDown`).
    pub fn set_health(&self, b: BackendId, to: HealthState, now_ns: u64) -> bool {
        assert!(b < self.health.len(), "backend id out of range");
        let mut inner = self.inner.lock().expect("pool lock poisoned");
        let from = self.health.get(b);
        if !from.can_transition(to) {
            return false;
        }
        self.health.set(b, to);
        let admit: Vec<BackendId> = (0..self.health.len())
            .filter(|&i| self.health.get(i).accepts_new())
            .collect();
        let version = inner.next_version;
        inner.next_version += 1;
        inner.table = Arc::new(BackendTable::build(version, admit, Arc::clone(&self.health)));
        self.version.store(version, Ordering::Relaxed);
        let kind = match to {
            HealthState::Healthy | HealthState::Slow => EventKind::BackendUp,
            HealthState::Draining => EventKind::BackendDrain,
            HealthState::Down => EventKind::BackendDown,
        };
        trace_event!(now_ns, kind, CONTROL_LANE, b, version);
        true
    }
}

impl std::fmt::Debug for BackendPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackendPool")
            .field("len", &self.len())
            .field("version", &self.version())
            .finish()
    }
}

/// Per-caller memo of the last table seen, keyed by version: keeps the
/// accept path off the pool lock while the pool is quiet.
#[derive(Debug, Default)]
pub struct TableCache {
    version: u64,
    table: Option<Arc<BackendTable>>,
}

impl TableCache {
    /// An empty cache (first [`BackendPool::cached`] call fills it).
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Resolution;

    #[test]
    fn publishes_a_new_version_per_transition() {
        let pool = BackendPool::new(4);
        assert_eq!(pool.version(), 1);
        assert!(pool.set_health(2, HealthState::Draining, 10));
        assert_eq!(pool.version(), 2);
        assert!(pool.set_health(2, HealthState::Down, 20));
        assert_eq!(pool.version(), 3);
        assert_eq!(pool.table().version(), 3);
    }

    #[test]
    fn illegal_transitions_change_nothing() {
        let pool = BackendPool::new(2);
        assert!(pool.set_health(0, HealthState::Down, 0));
        // Down → Draining is illegal; version and state must hold.
        assert!(!pool.set_health(0, HealthState::Draining, 1));
        assert_eq!(pool.health(0), HealthState::Down);
        assert_eq!(pool.version(), 2);
        // Self-transition is illegal too.
        assert!(!pool.set_health(1, HealthState::Healthy, 2));
        assert_eq!(pool.version(), 2);
    }

    #[test]
    fn draining_leaves_new_tables_but_serves_old_admissions() {
        let pool = BackendPool::new(3);
        let old = pool.table();
        // Find a hash pinned to backend 1 under the old table.
        let hash = (0..u32::MAX)
            .find(|&h| old.select(h) == Some(1))
            .expect("some hash maps to backend 1");
        let adm = old.admit(hash).unwrap();
        assert!(pool.set_health(1, HealthState::Draining, 5));
        // New connections cannot land on 1...
        let new = pool.table();
        assert_eq!(new.admit_len(), 2);
        for h in 0..10_000u32 {
            assert_ne!(new.select(h), Some(1));
        }
        // ...but the old admission still resolves to it.
        assert_eq!(adm.resolve(), Resolution::Pinned(1));
        assert_eq!(adm.version(), 1);
    }

    #[test]
    fn cached_tracks_republishes() {
        let pool = BackendPool::new(2);
        let mut cache = TableCache::new();
        let t1 = pool.cached(&mut cache);
        assert_eq!(t1.version(), 1);
        // Quiet pool: same Arc back.
        assert!(Arc::ptr_eq(&t1, &pool.cached(&mut cache)));
        pool.set_health(0, HealthState::Down, 0);
        let t2 = pool.cached(&mut cache);
        assert_eq!(t2.version(), 2);
        assert!(!Arc::ptr_eq(&t1, &t2));
    }

    #[test]
    fn all_backends_down_publishes_an_empty_admit_set() {
        let pool = BackendPool::new(2);
        pool.set_health(0, HealthState::Down, 0);
        pool.set_health(1, HealthState::Down, 1);
        let t = pool.table();
        assert_eq!(t.admit_len(), 0);
        assert!(t.admit(7).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one backend")]
    fn zero_backends_rejected() {
        BackendPool::new(0);
    }
}
