//! Keep-alive connection-pool models for the §7 deployment experiences.
//!
//! Hermes' spreading surfaced **reduced backend connection reuse**:
//! spreading requests across all workers fragments per-worker backend
//! connection pools; a shared pool restores the reuse rate
//! ([`PoolModel`]).

/// Backend connection pooling arrangement (§7 deployment issue 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolModel {
    /// Each worker keeps its own idle-connection pool.
    PerWorker,
    /// All workers share one pool (the paper's proposed remedy).
    Shared,
}

/// Idle-connection pool simulation with keep-alive expiry: an idle
/// upstream connection can be reused only within `ttl_steps` of its last
/// use (backends close idle connections after a keep-alive timeout).
/// This is what makes pool *fragmentation* costly: spreading requests
/// over per-worker pools multiplies the inter-arrival gap per
/// (pool, server) pair past the keep-alive window, so handshakes —
/// expensive over the Internet to on-prem IDCs — recur (§7 issue 2).
#[derive(Debug)]
pub struct PoolSim {
    model: PoolModel,
    /// Last-use step per `[pool][server]` (`u64::MAX` = never used).
    last_use: Vec<Vec<u64>>,
    /// Keep-alive window in request steps.
    ttl_steps: u64,
    /// Monotone request counter.
    step: u64,
    /// Hits (reused an idle connection).
    pub reused: u64,
    /// Misses (new TCP/TLS handshake to the backend).
    pub handshakes: u64,
}

impl PoolSim {
    /// Build a pool simulation with the given keep-alive window.
    pub fn new(model: PoolModel, workers: usize, servers: usize, ttl_steps: u64) -> Self {
        let pools = match model {
            PoolModel::PerWorker => workers,
            PoolModel::Shared => 1,
        };
        Self {
            model,
            last_use: vec![vec![u64::MAX; servers]; pools],
            ttl_steps,
            step: 0,
            reused: 0,
            handshakes: 0,
        }
    }

    fn pool_of(&self, worker: usize) -> usize {
        match self.model {
            PoolModel::PerWorker => worker,
            PoolModel::Shared => 0,
        }
    }

    /// Worker `w` sends one upstream request to `server`, then returns the
    /// connection to the pool.
    pub fn request(&mut self, w: usize, server: usize) {
        self.step += 1;
        let p = self.pool_of(w);
        let last = self.last_use[p][server];
        if last != u64::MAX && self.step.saturating_sub(last) <= self.ttl_steps {
            self.reused += 1;
        } else {
            self.handshakes += 1;
        }
        self.last_use[p][server] = self.step;
    }

    /// Fraction of upstream requests served from the pool.
    pub fn reuse_rate(&self) -> f64 {
        let total = self.reused + self.handshakes;
        if total == 0 {
            0.0
        } else {
            self.reused as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pseudo-random server pick (SplitMix-ish), no rand dependency.
    fn server_for(i: usize, servers: usize) -> usize {
        let mut x = i as u64 ^ 0x2545_F491_4F6C_DD1D;
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        (x % servers as u64) as usize
    }

    #[test]
    fn shared_pool_beats_per_worker_reuse() {
        // §7 issue 2: the same request stream, spread evenly over workers
        // (the Hermes effect), reuses far fewer connections with
        // per-worker pools: the per-(pool,server) inter-arrival gap
        // exceeds the keep-alive window.
        let workers = 8;
        let servers = 50;
        let ttl = 100;
        let run = |model| {
            let mut sim = PoolSim::new(model, workers, servers, ttl);
            for i in 0..50_000usize {
                sim.request(i % workers, server_for(i, servers));
            }
            sim.reuse_rate()
        };
        let per_worker = run(PoolModel::PerWorker);
        let shared = run(PoolModel::Shared);
        assert!(shared > 0.8, "shared pool reuse {shared} should be high");
        assert!(
            per_worker < 0.4,
            "per-worker reuse {per_worker} should collapse under spreading"
        );
    }

    #[test]
    fn concentrated_traffic_hides_the_pool_problem() {
        // Under exclusive, one worker carries everything, so per-worker
        // pooling reuses nearly as well as shared — which is why the
        // issue only appeared when Hermes spread the traffic.
        let mut sim = PoolSim::new(PoolModel::PerWorker, 8, 50, 100);
        for i in 0..50_000usize {
            sim.request(0, server_for(i, 50)); // all traffic on worker 0
        }
        assert!(sim.reuse_rate() > 0.8, "rate {}", sim.reuse_rate());
    }

    #[test]
    fn pool_expires_idle_connections() {
        let mut sim = PoolSim::new(PoolModel::Shared, 1, 1, 5);
        sim.request(0, 0); // handshake
        sim.request(0, 0); // reuse (1 step gap)
        for _ in 0..10 {
            sim.step += 1; // quiet period beyond the keep-alive window
        }
        sim.request(0, 0); // expired: handshake again
        assert_eq!(sim.handshakes, 2);
        assert_eq!(sim.reused, 1);
    }
}
