//! Round-robin restart models for the §7 deployment experiences.
//!
//! Replacing epoll exclusive with Hermes surfaced a *backend* effect:
//! **synchronized round-robin restarts**. When a tenant's server list
//! updates, every worker restarts its round-robin cursor at the first
//! server. Under exclusive one worker carried most requests, so its
//! round-robin wrapped many times and stayed fair; under Hermes each
//! worker carries few requests, and the synchronized restarts pile
//! traffic onto the first few servers. Fix: randomize each worker's
//! starting offset after list updates ([`RestartPolicy::Randomized`]).

/// How a worker's round-robin cursor restarts after a server-list update.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RestartPolicy {
    /// Restart at the first server (the pre-fix behaviour).
    FirstServer,
    /// Restart at a per-worker pseudo-random offset (the deployed fix).
    Randomized {
        /// Seed mixed with the worker id to derive the offset.
        seed: u64,
    },
}

/// One worker's round-robin distributor over a tenant's backend servers.
#[derive(Clone, Debug)]
pub struct RoundRobin {
    servers: usize,
    cursor: usize,
}

impl RoundRobin {
    /// A distributor over `servers` backends, cursor at 0.
    pub fn new(servers: usize) -> Self {
        assert!(servers >= 1, "need at least one backend server");
        Self { servers, cursor: 0 }
    }

    /// Number of servers in the current list.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Pick the next server.
    pub fn next_server(&mut self) -> usize {
        let s = self.cursor;
        self.cursor = (self.cursor + 1) % self.servers;
        s
    }

    /// Apply a server-list update: install the new list length and
    /// restart the cursor per policy (§7's root cause lives here).
    pub fn update_list(&mut self, worker: usize, servers: usize, policy: RestartPolicy) {
        assert!(servers >= 1, "need at least one backend server");
        self.servers = servers;
        self.cursor = match policy {
            RestartPolicy::FirstServer => 0,
            RestartPolicy::Randomized { seed } => {
                // SplitMix64 over (seed, worker): deterministic, distinct
                // per worker — no RNG dependency in the hot path.
                let mut x = seed ^ (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                x ^= x >> 30;
                x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x ^= x >> 27;
                x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^= x >> 31;
                (x % servers as u64) as usize
            }
        };
    }
}

/// Simulate a fleet of workers distributing `requests_per_worker` requests
/// each, immediately after a synchronized list update. Returns per-server
/// request counts — the §7 imbalance measurement.
pub fn fleet_distribution(
    workers: usize,
    requests_per_worker: usize,
    servers: usize,
    policy: RestartPolicy,
) -> Vec<u64> {
    let mut counts = vec![0u64; servers];
    for w in 0..workers {
        let mut rr = RoundRobin::new(servers);
        rr.update_list(w, servers, policy);
        for _ in 0..requests_per_worker {
            counts[rr.next_server()] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny local stddev to avoid a dev-dependency cycle with
    /// hermes-metrics (this crate must stay foundational).
    fn stddev_of(v: &[f64]) -> f64 {
        if v.len() < 2 {
            return 0.0;
        }
        let m = v.iter().sum::<f64>() / v.len() as f64;
        (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).sqrt()
    }

    #[test]
    fn round_robin_cycles() {
        let mut rr = RoundRobin::new(3);
        assert_eq!(
            (0..7).map(|_| rr.next_server()).collect::<Vec<_>>(),
            vec![0, 1, 2, 0, 1, 2, 0]
        );
    }

    #[test]
    fn synchronized_restarts_overload_first_servers() {
        // §7: 16 workers, 100 servers, only 30 requests each after the
        // list update ⇒ first ~30 servers get 16 requests, the rest 0.
        let counts = fleet_distribution(16, 30, 100, RestartPolicy::FirstServer);
        assert_eq!(counts[0], 16);
        assert_eq!(counts[29], 16);
        assert_eq!(counts[30], 0);
        // "certain servers receiving 2-3x the traffic of others" —
        // here the extreme version: some servers get everything.
    }

    #[test]
    fn randomized_offsets_restore_fairness() {
        let sync = fleet_distribution(16, 30, 100, RestartPolicy::FirstServer);
        let rand = fleet_distribution(16, 30, 100, RestartPolicy::Randomized { seed: 7 });
        let sd = |c: &[u64]| stddev_of(&c.iter().map(|&x| x as f64).collect::<Vec<_>>());
        assert!(
            sd(&rand) < sd(&sync) / 3.0,
            "randomized SD {} vs synchronized SD {}",
            sd(&rand),
            sd(&sync)
        );
        // Every request still lands somewhere.
        assert_eq!(rand.iter().sum::<u64>(), 16 * 30);
    }

    #[test]
    fn randomized_offsets_differ_across_workers() {
        let mut offsets = std::collections::HashSet::new();
        for w in 0..16 {
            let mut rr = RoundRobin::new(1_000);
            rr.update_list(w, 1_000, RestartPolicy::Randomized { seed: 1 });
            offsets.insert(rr.next_server());
        }
        assert!(offsets.len() >= 14, "offsets collide too much: {offsets:?}");
    }

    #[test]
    fn update_list_resizes() {
        let mut rr = RoundRobin::new(5);
        rr.next_server();
        rr.update_list(0, 2, RestartPolicy::FirstServer);
        assert_eq!(rr.servers(), 2);
        assert_eq!(rr.next_server(), 0);
        assert_eq!(rr.next_server(), 1);
        assert_eq!(rr.next_server(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one backend")]
    fn zero_servers_rejected() {
        RoundRobin::new(0);
    }
}
