//! Frozen, epoch-versioned backend tables and per-connection admissions.
//!
//! A [`BackendTable`] is an immutable snapshot published by the pool: the
//! set of backends that accepted new connections at publish time, plus a
//! dense power-of-two slot array for O(1) Concury-style selection keyed on
//! the connection 5-tuple hash. Tables are shared as `Arc`s; a connection
//! captures the table it was *admitted* under and resolves every
//! subsequent request against that same version — zero locks, no
//! coordination with the control plane, and per-connection consistency
//! under churn by construction.
//!
//! Liveness is the one thing that must pierce the freeze: the table holds
//! an `Arc` to the pool's shared [`HealthCells`], so a pinned backend
//! going [`HealthState::Down`] is observable from any version with one
//! relaxed atomic load. Resolution then walks the *admitted* version's
//! member list (deterministically, from the hashed slot) before ever
//! consulting the live table — the fallback of last resort, used only on
//! version retirement (every member of the admitted version down).

use crate::health::{HealthCells, HealthState};
use crate::BackendId;
use std::sync::Arc;

/// SplitMix64 finalizer: decorrelates the 5-tuple hash from the slot
/// index so backend selection does not alias the worker-dispatch hashing
/// (both consume the same flow hash).
#[inline]
fn mix(h: u32) -> u64 {
    let mut x = (h as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One frozen epoch of the backend pool.
#[derive(Debug)]
pub struct BackendTable {
    version: u64,
    /// Backends that accepted new connections at publish time.
    admit: Box<[BackendId]>,
    /// Power-of-two slot array indexing into `admit`.
    slots: Box<[u32]>,
    /// Live health, shared across every version of the same pool.
    health: Arc<HealthCells>,
}

impl BackendTable {
    /// Build a frozen table. `admit` must hold distinct backend ids valid
    /// for `health`.
    pub(crate) fn build(version: u64, admit: Vec<BackendId>, health: Arc<HealthCells>) -> Self {
        let slots = if admit.is_empty() {
            Vec::new()
        } else {
            // Enough slots that the round-robin fill is near-uniform
            // (bias <= 1/slot_count) while staying cache-compact.
            let n = (admit.len() * 64).next_power_of_two().max(256);
            (0..n).map(|j| (j % admit.len()) as u32).collect()
        };
        Self {
            version,
            admit: admit.into_boxed_slice(),
            slots: slots.into_boxed_slice(),
            health,
        }
    }

    /// Epoch of this snapshot (monotone across publishes).
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Total backends in the pool this table was published from.
    #[inline]
    pub fn pool_len(&self) -> usize {
        self.health.len()
    }

    /// Backends admitting new connections at publish time.
    #[inline]
    pub fn admit_len(&self) -> usize {
        self.admit.len()
    }

    /// Live health of backend `b` (shared cells, not frozen state).
    #[inline]
    pub fn live_health(&self, b: BackendId) -> HealthState {
        self.health.get(b)
    }

    /// O(1) stateless selection: the backend this table assigns to `hash`.
    /// `None` iff no backend admitted new connections at publish time.
    #[inline]
    pub fn select(&self, hash: u32) -> Option<BackendId> {
        if self.admit.is_empty() {
            return None;
        }
        let slot = (mix(hash) & (self.slots.len() as u64 - 1)) as usize;
        Some(self.admit[self.slots[slot] as usize])
    }

    /// Admit a connection: pin it to this table version and its selected
    /// backend. `None` iff the table admits nothing.
    pub fn admit(self: &Arc<Self>, hash: u32) -> Option<Admission> {
        let backend = self.select(hash)?;
        Some(Admission {
            table: Arc::clone(self),
            hash,
            backend,
        })
    }

    /// Position of `hash`'s selected backend within `admit` — the start
    /// of the deterministic retry walk.
    #[inline]
    fn admit_index(&self, hash: u32) -> usize {
        let slot = (mix(hash) & (self.slots.len() as u64 - 1)) as usize;
        self.slots[slot] as usize
    }
}

/// How a request resolved against its connection's admitted version.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// The admitted backend is still serving: the common case, and the
    /// consistency guarantee (same backend for the connection's lifetime).
    Pinned(BackendId),
    /// The admitted backend went down; a sibling *within the admitted
    /// version* took over (deterministic walk from the hashed slot).
    Retried(BackendId),
    /// Every backend of the admitted version is down — the version is
    /// retired. The caller must fall back to the live table.
    Expired,
}

/// A connection's pinned claim on one table version: the `Arc` capture
/// that makes the request path lock-free and churn-immune.
#[derive(Clone, Debug)]
pub struct Admission {
    table: Arc<BackendTable>,
    hash: u32,
    backend: BackendId,
}

impl Admission {
    /// The table version this connection was admitted under.
    #[inline]
    pub fn version(&self) -> u64 {
        self.table.version()
    }

    /// The backend selected at admission (the pin).
    #[inline]
    pub fn pinned(&self) -> BackendId {
        self.backend
    }

    /// The 5-tuple hash the admission was keyed on.
    #[inline]
    pub fn hash(&self) -> u32 {
        self.hash
    }

    /// Resolve the backend for a request on this connection: the pinned
    /// backend while it serves, else the first serving sibling within the
    /// admitted version, else [`Resolution::Expired`]. One relaxed atomic
    /// load on the fast path; no locks anywhere.
    pub fn resolve(&self) -> Resolution {
        let t = &self.table;
        if t.live_health(self.backend).serves_in_flight() {
            return Resolution::Pinned(self.backend);
        }
        let n = t.admit.len();
        let start = t.admit_index(self.hash);
        for k in 1..n {
            let b = t.admit[(start + k) % n];
            if t.live_health(b).serves_in_flight() {
                return Resolution::Retried(b);
            }
        }
        Resolution::Expired
    }

    /// The `attempt`-th connect candidate within the admitted version:
    /// attempt 0 is the pinned backend, later attempts walk the admit list
    /// from the hashed slot (the connect-failure retry chain). `None` once
    /// the version's candidates are exhausted.
    pub fn candidate(&self, attempt: usize) -> Option<BackendId> {
        let t = &self.table;
        let n = t.admit.len();
        if attempt >= n {
            return None;
        }
        if attempt == 0 {
            return Some(self.backend);
        }
        Some(t.admit[(t.admit_index(self.hash) + attempt) % n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(version: u64, admit: Vec<BackendId>, pool: usize) -> (Arc<BackendTable>, Arc<HealthCells>) {
        let health = Arc::new(HealthCells::new(pool));
        (
            Arc::new(BackendTable::build(version, admit, Arc::clone(&health))),
            health,
        )
    }

    #[test]
    fn selection_is_deterministic_and_total() {
        let (t, _) = table(1, vec![0, 1, 2, 3], 4);
        for h in 0..10_000u32 {
            let a = t.select(h).unwrap();
            assert_eq!(t.select(h), Some(a), "same hash, same backend");
            assert!(a < 4);
        }
    }

    #[test]
    fn selection_spreads_evenly() {
        let (t, _) = table(1, vec![0, 1, 2, 3, 4], 5);
        let mut counts = [0u32; 5];
        for h in 0..50_000u32 {
            counts[t.select(h.wrapping_mul(2_654_435_761)).unwrap()] += 1;
        }
        let (min, max) = (
            *counts.iter().min().unwrap() as f64,
            *counts.iter().max().unwrap() as f64,
        );
        assert!(max / min < 1.15, "spread too uneven: {counts:?}");
    }

    #[test]
    fn empty_admit_set_selects_nothing() {
        let (t, _) = table(7, vec![], 3);
        assert_eq!(t.select(42), None);
        assert!(t.admit(42).is_none());
        assert_eq!(t.admit_len(), 0);
        assert_eq!(t.pool_len(), 3);
    }

    #[test]
    fn admission_pins_until_the_backend_dies() {
        let (t, health) = table(3, vec![0, 1, 2], 3);
        let adm = t.admit(0xfeed_beef).unwrap();
        let pinned = adm.pinned();
        assert_eq!(adm.version(), 3);
        assert_eq!(adm.resolve(), Resolution::Pinned(pinned));
        // Draining keeps serving in-flight connections.
        health.set(pinned, HealthState::Draining);
        assert_eq!(adm.resolve(), Resolution::Pinned(pinned));
        // Down forces a retry within the admitted version.
        health.set(pinned, HealthState::Down);
        match adm.resolve() {
            Resolution::Retried(b) => assert_ne!(b, pinned),
            other => panic!("expected retry, got {other:?}"),
        }
    }

    #[test]
    fn retry_is_deterministic() {
        let (t, health) = table(1, vec![0, 1, 2, 3], 4);
        let adm = t.admit(99).unwrap();
        health.set(adm.pinned(), HealthState::Down);
        let a = adm.resolve();
        let b = adm.resolve();
        assert_eq!(a, b, "retry walk must be deterministic");
    }

    #[test]
    fn version_retires_when_all_members_die() {
        let (t, health) = table(5, vec![1, 2], 4);
        let adm = t.admit(7).unwrap();
        health.set(1, HealthState::Down);
        health.set(2, HealthState::Down);
        assert_eq!(adm.resolve(), Resolution::Expired);
    }

    #[test]
    fn candidate_chain_covers_the_admitted_version_once() {
        let (t, _) = table(1, vec![0, 1, 2], 3);
        let adm = t.admit(1234).unwrap();
        let chain: Vec<_> = (0..4).map(|k| adm.candidate(k)).collect();
        assert_eq!(chain[0], Some(adm.pinned()));
        let mut seen: Vec<_> = chain.iter().take(3).map(|c| c.unwrap()).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2], "chain visits each member once");
        assert_eq!(chain[3], None, "chain exhausts after admit_len attempts");
    }
}
